package main

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bcclique/internal/engine"
	"bcclique/internal/harness"
	"bcclique/internal/results"
)

// getState fetches url and returns (status, X-Cache-State).
func getState(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache-State")
}

// TestCacheStateHeader pins the satellite contract: /v1/report and
// /v1/sweeps answer X-Cache-State: miss cold and hit warm, in both
// buffered and streamed formats.
func TestCacheStateHeader(t *testing.T) {
	ts, _ := testServer(t)
	for _, url := range []string{
		ts.URL + "/v1/report?only=E13&quick=1&seed=1&format=md",
		ts.URL + "/v1/report?only=E13&quick=1&seed=2&format=jsonl",
		ts.URL + "/v1/sweeps?grid=E18&quick=1&seed=1&format=json",
		ts.URL + "/v1/sweeps?grid=E18&quick=1&seed=2&format=csv",
	} {
		code, state := getState(t, url)
		if code != http.StatusOK || state != "miss" {
			t.Errorf("cold GET %s = %d %q, want 200 miss", url, code, state)
		}
		code, state = getState(t, url)
		if code != http.StatusOK || state != "hit" {
			t.Errorf("warm GET %s = %d %q, want 200 hit", url, code, state)
		}
	}
}

// brokenBackend fails every operation: the store's circuit breaker diet.
type brokenBackend struct{}

var errBroken = errors.New("backend is on fire")

func (brokenBackend) Get(context.Context, string) ([]byte, error) { return nil, errBroken }
func (brokenBackend) Put(context.Context, string, []byte) error   { return errBroken }
func (brokenBackend) Delete(context.Context, string) error        { return errBroken }
func (brokenBackend) Ping(context.Context) error                  { return errBroken }

// TestDegradedModeServing is the degraded-mode acceptance test: with
// the store backend hard-down, requests keep answering 200 (slower,
// compute-through), the response says X-Cache-State: bypass, and the
// breaker's open state is visible on /readyz, /healthz, and /metrics —
// without flipping readiness.
func TestDegradedModeServing(t *testing.T) {
	health := results.NewHealth(results.HealthConfig{
		Window: 8, MinSamples: 2, Threshold: 0.5, Cooldown: time.Hour,
	})
	store := results.New(brokenBackend{}, results.WithHealth(health))
	eng := harness.NewEngine(engine.WithStore(store))
	ts := httptest.NewServer(newServer(eng, defaultServerConfig()).routes())
	defer ts.Close()

	// First request: breaker still closed, so the failed get and the
	// failed put each land an error sample (2 ≥ MinSamples at 100% error
	// rate) and trip it. The request itself still succeeds as a miss.
	code, state := getState(t, ts.URL+"/v1/report?only=E13&quick=1&seed=1")
	if code != http.StatusOK || state != "miss" {
		t.Fatalf("tripping request = %d %q, want 200 miss", code, state)
	}
	if got := health.State(); got != results.StateOpen {
		t.Fatalf("breaker = %q after an all-errors window, want open", got)
	}

	// Open breaker: same request recomputes and says so.
	code, state = getState(t, ts.URL+"/v1/report?only=E13&quick=1&seed=1")
	if code != http.StatusOK || state != "bypass" {
		t.Errorf("degraded request = %d %q, want 200 bypass", code, state)
	}
	if eng.Executions() != 2 {
		t.Errorf("executions = %d, want 2 (bypass recomputes)", eng.Executions())
	}

	// Degraded is not unready: /readyz stays 200 and carries the detail.
	var ready struct {
		Status string                  `json:"status"`
		Store  *results.HealthSnapshot `json:"store"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK {
		t.Fatalf("/readyz = %d with an open breaker, want 200 (degraded, not unready)", code)
	}
	if ready.Status != "ready" || ready.Store == nil || ready.Store.State != results.StateOpen {
		t.Errorf("/readyz = %+v, want ready with store state open", ready)
	}

	var healthz struct {
		Breaker *results.HealthSnapshot `json:"breaker"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &healthz); code != http.StatusOK {
		t.Fatal("/healthz not 200")
	}
	if healthz.Breaker == nil || healthz.Breaker.State != results.StateOpen {
		t.Errorf("/healthz breaker = %+v, want open", healthz.Breaker)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"bccd_store_breaker_state 1",
		"bccd_store_bypass_total 1",
		"bccd_store_get_errors_total 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}
