package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"bcclique/internal/engine"
	"bcclique/internal/report"
	"bcclique/internal/results"
)

// server is the HTTP layer over one engine. All state lives in the
// engine (jobs) and its store (results); handlers are stateless.
type server struct {
	eng *engine.Engine
}

func newServer(eng *engine.Engine) *server { return &server{eng: eng} }

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submitJob)
	mux.HandleFunc("GET /v1/jobs", s.listJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	mux.HandleFunc("GET /v1/report", s.report)
	mux.HandleFunc("GET /v1/specs", s.specs)
	mux.HandleFunc("GET /healthz", s.health)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// validateOnly rejects unknown spec IDs up front so a typo is a 400, not
// a silently empty report.
func (s *server) validateOnly(only []string) error {
	for _, id := range only {
		if _, ok := s.eng.Lookup(id); !ok {
			return fmt.Errorf("unknown experiment ID %q", id)
		}
	}
	return nil
}

type jobRequest struct {
	Only  []string `json:"only,omitempty"`
	Quick bool     `json:"quick"`
	// Seed is a pointer so an explicit 0 is distinguishable from an
	// omitted field (which defaults to 1, like GET /v1/report and the
	// CLIs).
	Seed *int64 `json:"seed"`
}

func (s *server) submitJob(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	seed := int64(1)
	if req.Seed != nil {
		seed = *req.Seed
	}
	if err := s.validateOnly(req.Only); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job := s.eng.Submit(engine.Config{Quick: req.Quick, Seed: seed}, req.Only)
	writeJSON(w, http.StatusAccepted, job)
}

func (s *server) listJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Jobs())
}

func (s *server) getJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.eng.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// report renders a spec set synchronously, straight off the cache when
// warm, streaming sections in registry ID order as they complete.
func (s *server) report(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cfg := engine.Config{Seed: 1}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad seed %q", v)
			return
		}
		cfg.Seed = seed
	}
	if v := q.Get("quick"); v != "" {
		quick, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad quick %q", v)
			return
		}
		cfg.Quick = quick
	}
	var only []string
	if v := q.Get("only"); v != "" {
		only = strings.Split(v, ",")
	}
	if err := s.validateOnly(only); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	var (
		renderer    report.Renderer
		contentType string
	)
	switch format := q.Get("format"); format {
	case "", "md":
		renderer = report.Markdown{Trailer: true}
		contentType = "text/markdown; charset=utf-8"
	case "json":
		renderer = report.JSON{}
		contentType = "application/json"
	case "jsonl":
		renderer = report.JSONL{}
		contentType = "application/x-ndjson"
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want md, json, or jsonl)", format)
		return
	}

	meta := report.Meta{
		Title: "Experiments: paper vs. measured",
		Intro: fmt.Sprintf("Served by bccd from the shared result cache (config %s).", cfg.Canonical()),
	}
	w.Header().Set("Content-Type", contentType)
	if _, err := s.eng.Stream(w, renderer, meta, cfg, only, nil); err != nil {
		// Headers are gone; the truncated body plus this trailer line is
		// all we can signal mid-stream.
		fmt.Fprintf(w, "\nerror: %v\n", err)
	}
}

func (s *server) specs(w http.ResponseWriter, r *http.Request) {
	type specInfo struct {
		ID       string `json:"id"`
		Title    string `json:"title"`
		PaperRef string `json:"paper_ref"`
		Key      string `json:"key"`
	}
	var out []specInfo
	for _, sp := range s.eng.Specs() {
		out = append(out, specInfo{ID: sp.ID, Title: sp.Title, PaperRef: sp.PaperRef, Key: sp.Key()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		Status     string         `json:"status"`
		Executions int64          `json:"executions"`
		Cache      *results.Stats `json:"cache,omitempty"`
		CacheDir   string         `json:"cache_dir,omitempty"`
	}{Status: "ok", Executions: s.eng.Executions()}
	if st := s.eng.Store(); st != nil {
		stats := st.Stats()
		resp.Cache = &stats
		resp.CacheDir = st.Dir()
	}
	writeJSON(w, http.StatusOK, resp)
}
