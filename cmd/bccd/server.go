package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"bcclique/internal/engine"
	"bcclique/internal/report"
	"bcclique/internal/results"
)

// server is the HTTP layer over one engine. All state lives in the
// engine (jobs) and its store (results); handlers are stateless.
type server struct {
	eng *engine.Engine
}

func newServer(eng *engine.Engine) *server { return &server{eng: eng} }

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submitJob)
	mux.HandleFunc("GET /v1/jobs", s.listJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	mux.HandleFunc("GET /v1/report", s.report)
	mux.HandleFunc("GET /v1/sweeps", s.sweeps)
	mux.HandleFunc("GET /v1/specs", s.specs)
	mux.HandleFunc("GET /healthz", s.health)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// countingWriter tracks whether any bytes actually reached the client,
// which is what decides a streaming handler's error shape: before the
// first byte a failure can still be a clean JSON 500 (headers are unsent,
// so a Content-Type set optimistically is simply overwritten); after it,
// the only honest signal is the in-band error trailer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// streamError finishes a streaming response after err: a JSON 500 when
// nothing was flushed, the "\nerror: ..." trailer contract otherwise.
func streamError(w http.ResponseWriter, cw *countingWriter, err error) {
	if cw.n == 0 {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	fmt.Fprintf(w, "\nerror: %v\n", err)
}

// flushingSink wraps a RunGrid row sink so each row is pushed through
// net/http's response buffer as it completes — without this, per-row
// "streaming" stops at the server's internal bufio and a slow cold grid
// delivers nothing for minutes.
func flushingSink(w http.ResponseWriter, sink func(engine.GridCell, []string) error) func(engine.GridCell, []string) error {
	f, ok := w.(http.Flusher)
	if !ok {
		return sink
	}
	return func(c engine.GridCell, row []string) error {
		if err := sink(c, row); err != nil {
			return err
		}
		f.Flush()
		return nil
	}
}

// validateOnly rejects unknown spec IDs up front so a typo is a 400, not
// a silently empty report.
func (s *server) validateOnly(only []string) error {
	for _, id := range only {
		if _, ok := s.eng.Lookup(id); !ok {
			return fmt.Errorf("unknown experiment ID %q", id)
		}
	}
	return nil
}

type jobRequest struct {
	Only  []string `json:"only,omitempty"`
	Quick bool     `json:"quick"`
	// Seed is a pointer so an explicit 0 is distinguishable from an
	// omitted field (which defaults to 1, like GET /v1/report and the
	// CLIs).
	Seed *int64 `json:"seed"`
}

func (s *server) submitJob(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	seed := int64(1)
	if req.Seed != nil {
		seed = *req.Seed
	}
	if err := s.validateOnly(req.Only); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job := s.eng.Submit(engine.Config{Quick: req.Quick, Seed: seed}, req.Only)
	writeJSON(w, http.StatusAccepted, job)
}

func (s *server) listJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Jobs())
}

func (s *server) getJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.eng.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// report renders a spec set synchronously, straight off the cache when
// warm, streaming sections in registry ID order as they complete.
func (s *server) report(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cfg, err := parseConfig(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var only []string
	if v := q.Get("only"); v != "" {
		only = strings.Split(v, ",")
	}
	if err := s.validateOnly(only); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	var (
		renderer    report.Renderer
		contentType string
	)
	switch format := q.Get("format"); format {
	case "", "md":
		renderer = report.Markdown{Trailer: true}
		contentType = "text/markdown; charset=utf-8"
	case "json":
		renderer = report.JSON{}
		contentType = "application/json"
	case "jsonl":
		renderer = report.JSONL{}
		contentType = "application/x-ndjson"
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want md, json, or jsonl)", format)
		return
	}

	meta := report.Meta{
		Title: "Experiments: paper vs. measured",
		Intro: fmt.Sprintf("Served by bccd from the shared result cache (config %s).", cfg.Canonical()),
	}
	w.Header().Set("Content-Type", contentType)
	cw := &countingWriter{w: w}
	if _, err := s.eng.Stream(cw, renderer, meta, cfg, only, nil); err != nil {
		// A failure before the first flushed byte is still a clean JSON
		// 500; mid-stream, the truncated body plus the trailer line is
		// all we can signal.
		streamError(w, cw, err)
	}
}

// parseConfig reads the shared seed/quick query parameters.
func parseConfig(q url.Values) (engine.Config, error) {
	cfg := engine.Config{Seed: 1}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("bad seed %q", v)
		}
		cfg.Seed = seed
	}
	if v := q.Get("quick"); v != "" {
		quick, err := strconv.ParseBool(v)
		if err != nil {
			return cfg, fmt.Errorf("bad quick %q", v)
		}
		cfg.Quick = quick
	}
	return cfg, nil
}

// parseRestriction reads the optional protocols/families/sizes query
// parameters (comma lists, like the experiments CLI flags) and narrows
// the grid to them. Restricted runs share cache entries with full runs
// cell for cell, so a targeted large-n slice — one 8192 flood cell —
// never recomputes (or pre-warms) the rest of the ladder.
func parseRestriction(grid engine.GridSpec, q url.Values) (engine.GridSpec, error) {
	split := func(key string) []string {
		if v := q.Get(key); v != "" {
			return strings.Split(v, ",")
		}
		return nil
	}
	protocols, families := split("protocols"), split("families")
	var sizes []int
	if v := q.Get("sizes"); v != "" {
		for _, s := range strings.Split(v, ",") {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				// Non-positive sizes would only fail later inside the
				// family builders as a 500; they are a bad request.
				return grid, fmt.Errorf("bad sizes %q", v)
			}
			sizes = append(sizes, n)
		}
	}
	if protocols == nil && families == nil && sizes == nil {
		return grid, nil
	}
	return grid.Restrict(protocols, families, sizes)
}

// sweeps serves the sweep grids (E17/E18). Without ?grid= it lists the
// registered grids; with one it runs the grid through the per-cell
// cache and renders it as md, json, jsonl or csv — the row formats
// (jsonl, csv) stream each row as soon as its cell-order prefix
// completes, so large grids deliver incrementally. Optional
// ?protocols=/?families=/?sizes= comma lists narrow the grid to a
// targeted slice (same semantics as the experiments CLI flags).
func (s *server) sweeps(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	gridID := q.Get("grid")
	if gridID == "" {
		type gridInfo struct {
			ID        string   `json:"id"`
			Title     string   `json:"title"`
			PaperRef  string   `json:"paper_ref"`
			Protocols []string `json:"protocols"`
			Families  []string `json:"families"`
			Sizes     []int    `json:"sizes"`
			Seeds     int      `json:"seeds"`
		}
		out := []gridInfo{}
		for _, g := range s.eng.Grids() {
			out = append(out, gridInfo{ID: g.ID, Title: g.Title, PaperRef: g.PaperRef,
				Protocols: g.Protocols, Families: g.Families, Sizes: g.Sizes, Seeds: g.Seeds})
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	grid, ok := s.eng.LookupGrid(gridID)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown grid %q", gridID)
		return
	}
	cfg, err := parseConfig(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if grid, err = parseRestriction(grid, q); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	switch format := q.Get("format"); format {
	case "", "md":
		// Run first, set the content type only once the result is known:
		// a failed run answers as a JSON 500, not a markdown-typed error.
		res, err := s.eng.RunGrid(grid, cfg, nil, nil)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		if err := res.WriteMarkdown(w); err != nil {
			return
		}
	case "json":
		res, err := s.eng.RunGrid(grid, cfg, nil, nil)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	case "jsonl":
		// Streaming: the content type is set optimistically, but rows
		// write through a counting writer so a failure before the first
		// row still downgrades to a clean JSON 500 (headers unsent).
		w.Header().Set("Content-Type", "application/x-ndjson")
		cw := &countingWriter{w: w}
		if _, err := s.eng.RunGrid(grid, cfg, nil, flushingSink(w, grid.JSONLSink(cw))); err != nil {
			streamError(w, cw, err)
		}
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		cw := &countingWriter{w: w}
		sink, flush, err := grid.CSVSink(cw)
		if err != nil {
			// The header record never left the csv buffer: answer a real
			// 500 instead of a silently empty 200.
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		_, runErr := s.eng.RunGrid(grid, cfg, nil, flushingSink(w, sink))
		if runErr == nil {
			runErr = flush()
		} else if cw.n > 0 {
			// Mid-stream failure: push the streamed rows out before the
			// trailer. (With zero bytes delivered the buffered header is
			// deliberately dropped so the JSON 500 stays clean.)
			flush()
		}
		if runErr != nil {
			streamError(w, cw, runErr)
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want md, json, jsonl, or csv)", format)
	}
}

func (s *server) specs(w http.ResponseWriter, r *http.Request) {
	type specInfo struct {
		ID       string `json:"id"`
		Title    string `json:"title"`
		PaperRef string `json:"paper_ref"`
		Key      string `json:"key"`
	}
	var out []specInfo
	for _, sp := range s.eng.Specs() {
		out = append(out, specInfo{ID: sp.ID, Title: sp.Title, PaperRef: sp.PaperRef, Key: sp.Key()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		Status     string         `json:"status"`
		Executions int64          `json:"executions"`
		Cache      *results.Stats `json:"cache,omitempty"`
		CacheDir   string         `json:"cache_dir,omitempty"`
	}{Status: "ok", Executions: s.eng.Executions()}
	if st := s.eng.Store(); st != nil {
		stats := st.Stats()
		resp.Cache = &stats
		resp.CacheDir = st.Dir()
	}
	writeJSON(w, http.StatusOK, resp)
}
