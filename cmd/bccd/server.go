package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"bcclique/internal/bcc"
	"bcclique/internal/engine"
	"bcclique/internal/obs"
	"bcclique/internal/report"
	"bcclique/internal/results"
	"bcclique/internal/serving"
)

// serverConfig is the serving-armor configuration; see the flag
// descriptions in main.go for the semantics of each knob.
type serverConfig struct {
	// queueCapacity bounds concurrently admitted heavy work: async jobs
	// plus synchronous report/sweep computations.
	queueCapacity int
	// requestTimeout bounds each synchronous computation; 0 disables.
	requestTimeout time.Duration
	// rateLimit/rateBurst configure the per-client token bucket on the
	// /v1 endpoints; rateLimit 0 disables.
	rateLimit float64
	rateBurst int
	// maxBodyBytes caps POST bodies.
	maxBodyBytes int64
	// retryAfter is the Retry-After hint on queue-full 429s.
	retryAfter time.Duration
	// logger receives the server's structured records (rejections, drain
	// progress); nil discards them, which is what tests default to.
	logger *slog.Logger
}

func defaultServerConfig() serverConfig {
	return serverConfig{
		queueCapacity:  8,
		requestTimeout: 5 * time.Minute,
		rateLimit:      0,
		rateBurst:      30,
		maxBodyBytes:   1 << 20,
		retryAfter:     5 * time.Second,
	}
}

// server is the HTTP layer over one engine, armored for production:
// bounded admission, per-client rate limiting, request timeouts,
// client-disconnect cancellation, graceful drain, and /metrics.
// Experiment state lives in the engine (jobs) and its store (results);
// the server owns only serving state.
type server struct {
	eng     *engine.Engine
	cfg     serverConfig
	queue   *serving.Queue
	limiter *serving.Limiter

	// ready gates /readyz: true from construction until StartDrain.
	ready atomic.Bool
	// jobCtx is the base context async jobs run under — deliberately
	// not the submit request's context, so a client disconnect never
	// kills an accepted job. cancelJobs fires only at the hard drain
	// deadline.
	jobCtx     context.Context
	cancelJobs context.CancelFunc

	start    time.Time
	log      *slog.Logger
	metrics  *serving.Registry
	requests *serving.CounterVec   // labels: endpoint, code
	latency  *serving.HistogramVec // labels: endpoint

	// reqSeq numbers synchronous request traces ("req-<n>-<route>"), so
	// every traced response can hand back an X-Trace-Id resolvable at
	// /v1/traces/{id}.
	reqSeq atomic.Uint64

	// Per-cell histograms by protocol×family, fed from completed cell
	// spans via the tracer's OnEnd hook; nil when tracing is off.
	cellSeconds *serving.HistogramVec
	cellRounds  *serving.HistogramVec
	cellBits    *serving.HistogramVec
}

func newServer(eng *engine.Engine, cfg serverConfig) *server {
	jobCtx, cancelJobs := context.WithCancel(context.Background())
	s := &server{
		eng:        eng,
		cfg:        cfg,
		queue:      serving.NewQueue(cfg.queueCapacity),
		limiter:    serving.NewLimiter(cfg.rateLimit, cfg.rateBurst),
		jobCtx:     jobCtx,
		cancelJobs: cancelJobs,
		start:      time.Now(),
	}
	s.ready.Store(true)
	s.log = cfg.logger
	if s.log == nil {
		s.log = obs.NopLogger()
	}
	s.initMetrics()
	// Completed cell spans feed the per-cell histograms: duration from
	// the span itself, mean rounds/bits from the attributes the harness
	// sets. The hook runs on whichever goroutine ends the span, outside
	// the tracer lock; HistogramVec.Observe is concurrency-safe.
	if tr := eng.Tracer(); tr != nil {
		tr.OnEnd(func(rec obs.Record) {
			if rec.Name != "cell" {
				return
			}
			proto, _ := rec.Attr("protocol")
			fam, _ := rec.Attr("family")
			s.cellSeconds.Observe(rec.Duration.Seconds(), proto.Str, fam.Str)
			if a, ok := rec.Attr("mean_rounds"); ok {
				s.cellRounds.Observe(a.Num, proto.Str, fam.Str)
			}
			if a, ok := rec.Attr("mean_bits"); ok {
				s.cellBits.Observe(a.Num, proto.Str, fam.Str)
			}
		})
	}
	return s
}

func (s *server) initMetrics() {
	m := serving.NewRegistry()
	s.requests = m.CounterVec("bccd_requests_total",
		"HTTP requests by endpoint pattern and status code.", "endpoint", "code")
	s.latency = m.HistogramVec("bccd_request_duration_seconds",
		"HTTP request latency by endpoint pattern.", serving.DefaultLatencyBuckets, "endpoint")
	m.GaugeFunc("bccd_queue_depth", "Admitted units of heavy work currently held.",
		func() float64 { return float64(s.queue.Depth()) })
	m.GaugeFunc("bccd_queue_capacity", "Admission queue capacity.",
		func() float64 { return float64(s.queue.Capacity()) })
	m.GaugeFunc("bccd_jobs_inflight", "Submitted jobs currently queued or running.",
		func() float64 { return float64(s.eng.ActiveJobs()) })
	m.GaugeFunc("bccd_ready", "1 while accepting work, 0 once draining.",
		func() float64 {
			if s.ready.Load() {
				return 1
			}
			return 0
		})
	m.CounterFunc("bccd_spec_executions_total", "Spec executions actually performed (cache hits excluded).",
		func() float64 { return float64(s.eng.Executions()) })
	m.CounterFunc("bccd_cell_executions_total", "Sweep-grid cells actually computed (cache hits excluded).",
		func() float64 { return float64(s.eng.CellExecutions()) })
	m.GaugeFunc("bccd_intracell_shards_inflight", "Replica shards of intra-cell round loops executing right now.",
		func() float64 { return float64(bcc.IntraCellShardsInFlight()) })
	m.GaugeFunc("bccd_cells_running", "Sweep-grid cells computing right now (cache hits excluded).",
		func() float64 { return float64(engine.RunningCells()) })
	m.GaugeFunc("bccd_cell_peak_resident_bytes", "High-water mark of heap bytes per concurrently running cell since start.",
		func() float64 { return float64(engine.PeakCellResidentBytes()) })
	m.GaugeFunc("bccd_cells_per_second", "Average computed cells per second of process uptime.",
		func() float64 {
			up := time.Since(s.start).Seconds()
			if up <= 0 {
				return 0
			}
			return float64(s.eng.CellExecutions()) / up
		})
	m.GaugeFunc("bccd_cache_hit_rate", "Store hits (disk + shared in-flight) over lookups since start; 0 when uncached or unused.",
		func() float64 {
			st := s.eng.Store()
			if st == nil {
				return 0
			}
			stats := st.Stats()
			total := stats.Hits + stats.Shared + stats.Misses
			if total == 0 {
				return 0
			}
			return float64(stats.Hits+stats.Shared) / float64(total)
		})
	m.CounterFunc("bccd_cache_hits_total", "Result-store disk hits.",
		func() float64 { return float64(s.storeStats().Hits) })
	m.CounterFunc("bccd_cache_shared_total", "Requests served by piggybacking on an identical in-flight computation.",
		func() float64 { return float64(s.storeStats().Shared) })
	m.CounterFunc("bccd_cache_misses_total", "Result-store misses (computations).",
		func() float64 { return float64(s.storeStats().Misses) })
	m.GaugeFunc("bccd_store_breaker_state", "Store circuit breaker: 0 closed, 0.5 half-open, 1 open.",
		func() float64 {
			st := s.eng.Store()
			if st == nil {
				return 0
			}
			switch st.Health().State() {
			case results.StateOpen:
				return 1
			case results.StateHalfOpen:
				return 0.5
			}
			return 0
		})
	m.CounterFunc("bccd_store_quarantined_total", "Corrupt store entries moved to quarantine and recomputed.",
		func() float64 { return float64(s.storeStats().Quarantined) })
	m.CounterFunc("bccd_store_bypass_total", "Computations that skipped the store because the breaker was open.",
		func() float64 { return float64(s.storeStats().Bypassed) })
	m.CounterFunc("bccd_store_retries_total", "Backend operation retries absorbed by the retry decorator.",
		func() float64 { return float64(s.storeStats().Retries) })
	m.CounterFunc("bccd_store_get_errors_total", "Store reads that failed with a backend error (corruption excluded).",
		func() float64 { return float64(s.storeStats().GetErrors) })
	// Per-cell cost histograms by protocol×family. Populated only while
	// tracing is on (they are fed from completed cell spans); registered
	// unconditionally so dashboards see stable series either way.
	s.cellSeconds = m.HistogramVec("bccd_cell_seconds",
		"Wall time per computed sweep cell by protocol and family.",
		serving.DefaultLatencyBuckets, "protocol", "family")
	s.cellRounds = m.HistogramVec("bccd_cell_rounds",
		"Mean simulated rounds per sweep cell by protocol and family.",
		[]float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}, "protocol", "family")
	s.cellBits = m.HistogramVec("bccd_cell_bits",
		"Mean total broadcast bits per sweep cell by protocol and family.",
		[]float64{64, 512, 4096, 32768, 262144, 2097152, 16777216, 134217728}, "protocol", "family")
	s.metrics = m
}

func (s *server) storeStats() results.Stats {
	if st := s.eng.Store(); st != nil {
		return st.Stats()
	}
	return results.Stats{}
}

// StartDrain begins graceful shutdown: /readyz flips to 503 so load
// balancers stop routing here, and the admission queue closes so new
// heavy work is rejected while everything already admitted keeps its
// slot. Idempotent.
func (s *server) StartDrain() {
	s.ready.Store(false)
	s.queue.Close()
}

// Drain runs the full drain sequence: StartDrain, then wait for
// in-flight jobs to finish within the deadline, then hard-cancel
// whatever remains (running grids observe the cancellation at their
// next simulated round; their completed cells stay cached). Returns
// nil when everything finished cleanly, the wait error otherwise.
func (s *server) Drain(ctx context.Context) error {
	s.StartDrain()
	s.log.Info("drain started", "active_jobs", s.eng.ActiveJobs())
	err := s.eng.WaitJobs(ctx)
	if err != nil {
		// The deadline passed with jobs still running: this is the one
		// hard-cancel in the server's life, and it must leave a record —
		// the cancelled jobs report status "cancelled", not "failed", and
		// their completed cells stay cached.
		s.log.Error("drain deadline exceeded; hard-cancelling in-flight jobs",
			"active_jobs", s.eng.ActiveJobs(), "error", err.Error())
	} else {
		s.log.Info("drain complete")
	}
	s.cancelJobs()
	return err
}

// statusWriter records the response code for metrics (and whether any
// body bytes were written, which streaming error paths consult).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

// Flush passes through so streaming handlers can still force rows out.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// clientKey identifies the client for rate limiting: the remote IP
// without the ephemeral port, so one client's connections share one
// bucket.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// route registers one path with explicit method dispatch. Unsupported
// methods get a JSON 405 with the Allow header listing what the path
// supports; every outcome (including 405s and rate-limit 429s) is
// counted in the per-endpoint metrics under the registered pattern, so
// metric cardinality is bounded by the route table, not by request
// paths. limited marks endpoints subject to per-client rate limiting —
// compute endpoints are, monitoring endpoints never are.
func (s *server) route(mux *http.ServeMux, pattern string, limited bool, methods map[string]http.HandlerFunc) {
	allow := make([]string, 0, len(methods)+1)
	for _, m := range []string{http.MethodGet, http.MethodHead, http.MethodPost, http.MethodPut, http.MethodDelete} {
		if _, ok := methods[m]; ok {
			allow = append(allow, m)
		}
	}
	if _, ok := methods[http.MethodGet]; ok {
		allow = append(allow, http.MethodHead)
	}
	allowHeader := strings.Join(allow, ", ")
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		startReq := time.Now()
		defer func() {
			code := sw.code
			if code == 0 {
				code = http.StatusOK
			}
			s.requests.With(pattern, strconv.Itoa(code)).Inc()
			s.latency.Observe(time.Since(startReq).Seconds(), pattern)
		}()
		h, ok := methods[r.Method]
		if !ok && r.Method == http.MethodHead {
			h, ok = methods[http.MethodGet]
		}
		if !ok {
			sw.Header().Set("Allow", allowHeader)
			writeError(sw, http.StatusMethodNotAllowed, "method %s not allowed for %s (allow: %s)", r.Method, r.URL.Path, allowHeader)
			return
		}
		if limited && !s.limiter.Allow(clientKey(r)) {
			ra := s.limiter.RetryAfter(clientKey(r))
			sw.Header().Set("Retry-After", strconv.Itoa(int(ra.Seconds())))
			writeError(sw, http.StatusTooManyRequests, "rate limit exceeded; retry after %s", ra)
			s.log.Warn("request rejected",
				"reason", "rate_limit", "client", clientKey(r), "route", pattern,
				"queue_depth", s.queue.Depth(), "retry_after", ra.String())
			return
		}
		h(sw, r)
	})
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	s.route(mux, "/v1/jobs", true, map[string]http.HandlerFunc{
		http.MethodPost: s.submitJob,
		http.MethodGet:  s.listJobs,
	})
	s.route(mux, "/v1/jobs/{id}", true, map[string]http.HandlerFunc{http.MethodGet: s.getJob})
	s.route(mux, "/v1/report", true, map[string]http.HandlerFunc{http.MethodGet: s.report})
	s.route(mux, "/v1/sweeps", true, map[string]http.HandlerFunc{http.MethodGet: s.sweeps})
	s.route(mux, "/v1/specs", true, map[string]http.HandlerFunc{http.MethodGet: s.specs})
	s.route(mux, "/v1/traces", false, map[string]http.HandlerFunc{http.MethodGet: s.listTraces})
	s.route(mux, "/v1/traces/{id}", false, map[string]http.HandlerFunc{http.MethodGet: s.getTrace})
	s.route(mux, "/healthz", false, map[string]http.HandlerFunc{http.MethodGet: s.health})
	s.route(mux, "/readyz", false, map[string]http.HandlerFunc{http.MethodGet: s.readyz})
	s.route(mux, "/metrics", false, map[string]http.HandlerFunc{http.MethodGet: s.metricsHandler})
	return mux
}

// admit acquires one admission slot for heavy work, translating
// admission failures into their HTTP shapes: full → 429 with
// Retry-After, draining → 503. Both rejections leave a structured log
// record with the client, route, and queue depth — without it an
// operator sees only the aggregate 429/503 counters and cannot tell
// who is being shed. The returned release must be called when the work
// finishes; ok=false means the response has been written.
func (s *server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	release, err := s.queue.Acquire()
	switch {
	case errors.Is(err, serving.ErrFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.retryAfter.Seconds())))
		writeError(w, http.StatusTooManyRequests, "server at capacity (%d units in flight); retry after %s",
			s.queue.Capacity(), s.cfg.retryAfter)
		s.log.Warn("request rejected",
			"reason", "queue_full", "client", clientKey(r), "route", r.URL.Path,
			"queue_depth", s.queue.Depth(), "queue_capacity", s.queue.Capacity())
		return nil, false
	case errors.Is(err, serving.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "server is draining; submit to another instance")
		s.log.Warn("request rejected",
			"reason", "draining", "client", clientKey(r), "route", r.URL.Path,
			"queue_depth", s.queue.Depth())
		return nil, false
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return nil, false
	}
	return release, true
}

// requestCtx derives the computation context for a synchronous
// endpoint: the request's own context (so a client disconnect cancels
// the computation at its next simulated round) bounded by the
// configured per-request timeout.
func (s *server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.requestTimeout <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), s.cfg.requestTimeout)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// countingWriter tracks whether any bytes actually reached the client,
// which is what decides a streaming handler's error shape: before the
// first byte a failure can still be a clean JSON 500 (headers are unsent,
// so a Content-Type set optimistically is simply overwritten); after it,
// the only honest signal is the in-band error trailer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// errorStatus maps a computation error to its HTTP status: a blown
// per-request deadline is the gateway's fault (504), anything else a
// plain 500.
func errorStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// streamError finishes a streaming response after err: a JSON error
// when nothing was flushed (504 for a deadline, 500 otherwise; a
// vanished client gets a best-effort 500 it will never read), the
// "\nerror: ..." trailer contract otherwise.
func streamError(w http.ResponseWriter, cw *countingWriter, err error) {
	if cw.n == 0 {
		writeError(w, errorStatus(err), "%v", err)
		return
	}
	fmt.Fprintf(w, "\nerror: %v\n", err)
}

// flushingSink wraps a RunGrid row sink so each row is pushed through
// net/http's response buffer as it completes — without this, per-row
// "streaming" stops at the server's internal bufio and a slow cold grid
// delivers nothing for minutes.
func flushingSink(w http.ResponseWriter, sink func(engine.GridCell, []string) error) func(engine.GridCell, []string) error {
	f, ok := w.(http.Flusher)
	if !ok {
		return sink
	}
	return func(c engine.GridCell, row []string) error {
		if err := sink(c, row); err != nil {
			return err
		}
		f.Flush()
		return nil
	}
}

// cacheTracker classifies one synchronous request's cache behaviour
// from the engine events it observes (events arrive from worker
// goroutines, hence the atomics). The request-level verdict is the most
// degraded state any unit reported: bypass > miss > hit.
type cacheTracker struct {
	computed atomic.Int64
	bypassed atomic.Int64
}

func (t *cacheTracker) observe(ev engine.Event) {
	if ev.Kind != engine.EventDone {
		return
	}
	if ev.Cache == "bypass" {
		t.bypassed.Add(1)
	} else {
		t.computed.Add(1)
	}
}

// state returns the X-Cache-State verdict from what has been observed
// so far. For buffered responses (md/json sweeps) that is exact; for
// streamed responses the header is committed with the first body byte,
// so it reflects the units known by then — the stream itself stays
// correct either way.
func (t *cacheTracker) state() string {
	switch {
	case t.bypassed.Load() > 0:
		return "bypass"
	case t.computed.Load() > 0:
		return "miss"
	default:
		return "hit"
	}
}

// lazyRenderer defers the wrapped renderer's Begin until the first
// delivered section (or End, for empty runs), invoking onBegin just
// before — the hook that lets /v1/report set X-Cache-State, which is
// unknowable until work completes, while response headers are still
// unsent. It also upgrades the error contract: a run that fails before
// any section now answers a clean JSON error for every format instead
// of markdown front matter followed by a trailer. Stream delivers
// sections and End on one goroutine, so no locking is needed.
type lazyRenderer struct {
	inner   report.Renderer
	meta    report.Meta
	onBegin func()
	began   bool
}

func (l *lazyRenderer) Begin(w io.Writer, m report.Meta) error {
	l.meta = m
	return nil
}

func (l *lazyRenderer) begin(w io.Writer) error {
	if l.began {
		return nil
	}
	l.began = true
	if l.onBegin != nil {
		l.onBegin()
	}
	return l.inner.Begin(w, l.meta)
}

func (l *lazyRenderer) Section(w io.Writer, index int, r *report.Result) error {
	if err := l.begin(w); err != nil {
		return err
	}
	return l.inner.Section(w, index, r)
}

func (l *lazyRenderer) End(w io.Writer, results []*report.Result) error {
	if err := l.begin(w); err != nil {
		return err
	}
	return l.inner.End(w, results)
}

// headerSink wraps a row sink so the X-Cache-State header is committed
// just before the first row leaves — the last moment it can still be
// set on a streamed sweep. Rows are delivered in cell order on one
// assembly goroutine.
func headerSink(w http.ResponseWriter, t *cacheTracker, sink func(engine.GridCell, []string) error) func(engine.GridCell, []string) error {
	first := true
	return func(c engine.GridCell, row []string) error {
		if first {
			first = false
			w.Header().Set("X-Cache-State", t.state())
		}
		return sink(c, row)
	}
}

// validateOnly rejects unknown spec IDs up front so a typo is a 400, not
// a silently empty report.
func (s *server) validateOnly(only []string) error {
	for _, id := range only {
		if _, ok := s.eng.Lookup(id); !ok {
			return fmt.Errorf("unknown experiment ID %q", id)
		}
	}
	return nil
}

type jobRequest struct {
	Only  []string `json:"only,omitempty"`
	Quick bool     `json:"quick"`
	// Seed is a pointer so an explicit 0 is distinguishable from an
	// omitted field (which defaults to 1, like GET /v1/report and the
	// CLIs).
	Seed *int64 `json:"seed"`
}

func (s *server) submitJob(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes)
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	seed := int64(1)
	if req.Seed != nil {
		seed = *req.Seed
	}
	if err := s.validateOnly(req.Only); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The job holds its admission slot until it finishes, so queued +
	// running jobs plus synchronous computations can never exceed the
	// queue capacity.
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	// Jobs run under the server's base context, not the request's: the
	// 202 below ends this request, and an accepted job must survive its
	// submitter hanging up.
	job := s.eng.Submit(s.jobCtx, engine.Config{Quick: req.Quick, Seed: seed}, req.Only)
	if s.eng.Tracer() != nil {
		// A job's trace ID is its job ID, so the submitter can watch the
		// span tree grow at /v1/traces/{id} while the job runs.
		w.Header().Set("X-Trace-Id", job.ID)
	}
	go func() {
		defer release()
		s.eng.WaitJob(context.Background(), job.ID)
	}()
	writeJSON(w, http.StatusAccepted, job)
}

func (s *server) listJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Jobs())
}

func (s *server) getJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.eng.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// report renders a spec set synchronously, straight off the cache when
// warm, streaming sections in registry ID order as they complete. The
// computation runs under the request context: a client that hangs up
// cancels its own run (at the next simulated round), and the per-request
// timeout bounds the worst case.
func (s *server) report(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cfg, err := parseConfig(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var only []string
	if v := q.Get("only"); v != "" {
		only = strings.Split(v, ",")
	}
	if err := s.validateOnly(only); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	var (
		renderer    report.Renderer
		contentType string
	)
	switch format := q.Get("format"); format {
	case "", "md":
		renderer = report.Markdown{Trailer: true}
		contentType = "text/markdown; charset=utf-8"
	case "json":
		renderer = report.JSON{}
		contentType = "application/json"
	case "jsonl":
		renderer = report.JSONL{}
		contentType = "application/x-ndjson"
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want md, json, or jsonl)", format)
		return
	}

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	ctx, span := s.rootSpan(ctx, w, "http /v1/report")

	meta := report.Meta{
		Title: "Experiments: paper vs. measured",
		Intro: fmt.Sprintf("Served by bccd from the shared result cache (config %s).", cfg.Canonical()),
	}
	w.Header().Set("Content-Type", contentType)
	cw := &countingWriter{w: w}
	// The renderer's Begin is deferred to the first completed section so
	// that (a) X-Cache-State can be stamped once the first result's cache
	// verdict is known, and (b) a run that fails before producing anything
	// answers a clean JSON error instead of front matter plus a trailer.
	var tracker cacheTracker
	lazy := &lazyRenderer{inner: renderer, onBegin: func() {
		w.Header().Set("X-Cache-State", tracker.state())
	}}
	_, err = s.eng.Stream(ctx, cw, lazy, meta, cfg, only, tracker.observe)
	span.EndErr(err)
	if err != nil {
		// A failure before the first flushed byte is still a clean JSON
		// error; mid-stream, the truncated body plus the trailer line is
		// all we can signal.
		streamError(w, cw, err)
	}
}

// rootSpan begins a synchronous request's trace: a fresh "req-<n>-…"
// trace rooted at the endpoint name, with the trace ID handed back in
// the X-Trace-Id response header so clients (bccload's -trace-sample)
// can fetch the finished tree from /v1/traces/{id}. A tracerless engine
// makes this a no-op returning (ctx, nil).
func (s *server) rootSpan(ctx context.Context, w http.ResponseWriter, name string) (context.Context, *obs.Span) {
	tr := s.eng.Tracer()
	if tr == nil {
		return ctx, nil
	}
	route := strings.TrimPrefix(name, "http /v1/")
	traceID := fmt.Sprintf("req-%d-%s", s.reqSeq.Add(1), route)
	ctx, span := tr.Root(ctx, name, traceID)
	w.Header().Set("X-Trace-Id", traceID)
	return ctx, span
}

// parseConfig reads the shared seed/quick query parameters.
func parseConfig(q url.Values) (engine.Config, error) {
	cfg := engine.Config{Seed: 1}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("bad seed %q", v)
		}
		cfg.Seed = seed
	}
	if v := q.Get("quick"); v != "" {
		quick, err := strconv.ParseBool(v)
		if err != nil {
			return cfg, fmt.Errorf("bad quick %q", v)
		}
		cfg.Quick = quick
	}
	return cfg, nil
}

// parseRestriction reads the optional protocols/families/sizes query
// parameters (comma lists, like the experiments CLI flags) and narrows
// the grid to them. Restricted runs share cache entries with full runs
// cell for cell, so a targeted large-n slice — one 8192 flood cell —
// never recomputes (or pre-warms) the rest of the ladder.
func parseRestriction(grid engine.GridSpec, q url.Values) (engine.GridSpec, error) {
	split := func(key string) []string {
		if v := q.Get(key); v != "" {
			return strings.Split(v, ",")
		}
		return nil
	}
	protocols, families := split("protocols"), split("families")
	var sizes []int
	if v := q.Get("sizes"); v != "" {
		for _, s := range strings.Split(v, ",") {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				// Non-positive sizes would only fail later inside the
				// family builders as a 500; they are a bad request.
				return grid, fmt.Errorf("bad sizes %q", v)
			}
			sizes = append(sizes, n)
		}
	}
	if protocols == nil && families == nil && sizes == nil {
		return grid, nil
	}
	return grid.Restrict(protocols, families, sizes)
}

// sweeps serves the sweep grids (E17/E18). Without ?grid= it lists the
// registered grids; with one it runs the grid through the per-cell
// cache and renders it as md, json, jsonl or csv — the row formats
// (jsonl, csv) stream each row as soon as its cell-order prefix
// completes, so large grids deliver incrementally. Optional
// ?protocols=/?families=/?sizes= comma lists narrow the grid to a
// targeted slice (same semantics as the experiments CLI flags). Like
// /v1/report, the run is admission-gated and request-scoped: a hung-up
// client cancels its own sweep within one simulated round, and the
// completed cells stay cached for the retry.
func (s *server) sweeps(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	gridID := q.Get("grid")
	if gridID == "" {
		type gridInfo struct {
			ID        string   `json:"id"`
			Title     string   `json:"title"`
			PaperRef  string   `json:"paper_ref"`
			Protocols []string `json:"protocols"`
			Families  []string `json:"families"`
			Sizes     []int    `json:"sizes"`
			Seeds     int      `json:"seeds"`
		}
		out := []gridInfo{}
		for _, g := range s.eng.Grids() {
			out = append(out, gridInfo{ID: g.ID, Title: g.Title, PaperRef: g.PaperRef,
				Protocols: g.Protocols, Families: g.Families, Sizes: g.Sizes, Seeds: g.Seeds})
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	grid, ok := s.eng.LookupGrid(gridID)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown grid %q", gridID)
		return
	}
	cfg, err := parseConfig(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if grid, err = parseRestriction(grid, q); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	format := q.Get("format")
	switch format {
	case "", "md", "json", "jsonl", "csv":
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want md, json, jsonl, or csv)", format)
		return
	}

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	ctx, span := s.rootSpan(ctx, w, "http /v1/sweeps")
	span.SetStr("grid", gridID)
	var reqErr error
	defer func() { span.EndErr(reqErr) }()

	var tracker cacheTracker
	switch format {
	case "", "md":
		// Run first, set the content type only once the result is known:
		// a failed run answers as a JSON 500, not a markdown-typed error.
		// Buffered formats get an exact X-Cache-State — every cell has
		// reported by the time the header is stamped.
		res, err := s.eng.RunGrid(ctx, grid, cfg, tracker.observe, nil)
		if err != nil {
			reqErr = err
			writeError(w, errorStatus(err), "%v", err)
			return
		}
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		w.Header().Set("X-Cache-State", tracker.state())
		if err := res.WriteMarkdown(w); err != nil {
			return
		}
	case "json":
		res, err := s.eng.RunGrid(ctx, grid, cfg, tracker.observe, nil)
		if err != nil {
			reqErr = err
			writeError(w, errorStatus(err), "%v", err)
			return
		}
		w.Header().Set("X-Cache-State", tracker.state())
		writeJSON(w, http.StatusOK, res)
	case "jsonl":
		// Streaming: the content type is set optimistically, but rows
		// write through a counting writer so a failure before the first
		// row still downgrades to a clean JSON 500 (headers unsent).
		w.Header().Set("Content-Type", "application/x-ndjson")
		cw := &countingWriter{w: w}
		sink := headerSink(w, &tracker, flushingSink(w, grid.JSONLSink(cw)))
		if _, err := s.eng.RunGrid(ctx, grid, cfg, tracker.observe, sink); err != nil {
			reqErr = err
			streamError(w, cw, err)
		}
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		cw := &countingWriter{w: w}
		sink, flush, err := grid.CSVSink(cw)
		if err != nil {
			// The header record never left the csv buffer: answer a real
			// 500 instead of a silently empty 200.
			reqErr = err
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		_, runErr := s.eng.RunGrid(ctx, grid, cfg, tracker.observe, headerSink(w, &tracker, flushingSink(w, sink)))
		if runErr == nil {
			runErr = flush()
		} else if cw.n > 0 {
			// Mid-stream failure: push the streamed rows out before the
			// trailer. (With zero bytes delivered the buffered header is
			// deliberately dropped so the JSON 500 stays clean.)
			flush()
		}
		if runErr != nil {
			reqErr = runErr
			streamError(w, cw, runErr)
		}
	}
}

func (s *server) specs(w http.ResponseWriter, r *http.Request) {
	type specInfo struct {
		ID       string `json:"id"`
		Title    string `json:"title"`
		PaperRef string `json:"paper_ref"`
		Key      string `json:"key"`
	}
	var out []specInfo
	for _, sp := range s.eng.Specs() {
		out = append(out, specInfo{ID: sp.ID, Title: sp.Title, PaperRef: sp.PaperRef, Key: sp.Key()})
	}
	writeJSON(w, http.StatusOK, out)
}

// breakerSnapshot returns the store circuit breaker's state for the
// health endpoints, or nil when the server runs uncached.
func (s *server) breakerSnapshot() *results.HealthSnapshot {
	st := s.eng.Store()
	if st == nil {
		return nil
	}
	snap := st.Health().Snapshot()
	return &snap
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		Status     string                  `json:"status"`
		Executions int64                   `json:"executions"`
		Cache      *results.Stats          `json:"cache,omitempty"`
		CacheDir   string                  `json:"cache_dir,omitempty"`
		Breaker    *results.HealthSnapshot `json:"breaker,omitempty"`
	}{Status: "ok", Executions: s.eng.Executions()}
	if st := s.eng.Store(); st != nil {
		stats := st.Stats()
		resp.Cache = &stats
		resp.CacheDir = st.Dir()
		resp.Breaker = s.breakerSnapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}

// readyz is the load-balancer signal: 200 while accepting work, 503
// once draining — distinct from /healthz, which keeps answering 200
// during drain so the process is not killed mid-drain by a liveness
// probe. The store breaker's state rides along as detail: an open
// breaker means degraded (compute-through) service, not unreadiness —
// bccd still answers correctly, just slower, so it must keep its
// place in the rotation.
func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		Status string                  `json:"status"`
		Store  *results.HealthSnapshot `json:"store,omitempty"`
	}{Store: s.breakerSnapshot()}
	if s.ready.Load() {
		resp.Status = "ready"
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp.Status = "draining"
	writeJSON(w, http.StatusServiceUnavailable, resp)
}

func (s *server) metricsHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}
