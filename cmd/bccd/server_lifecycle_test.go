package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"bcclique/internal/engine"
	"bcclique/internal/parallel"
	"bcclique/internal/results"
)

// lifecycleServer builds a server (returned alongside its engine and
// the raw *server for drain tests) over a registry with two
// controllable entries:
//
//   - spec SLOW blocks until gate closes or its context is cancelled,
//     so tests can hold admission slots open deterministically;
//   - grid GCAN has 256 cells whose RunCell parks on the sweep context,
//     so client-disconnect tests can observe exactly which cells the
//     engine started before the cancellation landed.
func lifecycleServer(t *testing.T, cfg serverConfig) (*httptest.Server, *engine.Engine, *server, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	slow := engine.Spec{
		ID: "SLOW", Title: "blocks until released", PaperRef: "-",
		Run: func(ctx context.Context, _ engine.Config, _ engine.Params) (*engine.Result, error) {
			select {
			case <-gate:
				return &engine.Result{Claim: "c", Finding: "f"}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
	fast := engine.Spec{
		ID: "FAST", Title: "returns immediately", PaperRef: "-",
		Run: func(context.Context, engine.Config, engine.Params) (*engine.Result, error) {
			return &engine.Result{Claim: "c", Finding: "f"}, nil
		},
	}
	sizes := make([]int, 256)
	for i := range sizes {
		sizes[i] = i + 1
	}
	cancelGrid := engine.GridSpec{
		ID: "GCAN", Title: "cancellable grid",
		Protocols: []string{"p"}, Families: []string{"f"},
		Sizes: sizes, Seeds: 1,
		Headers: []string{"n"},
		CellKey: func(string, string) (string, error) { return "k", nil },
		RunCell: func(ctx context.Context, _ engine.Config, c engine.GridCell, _ []int64) ([]string, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New([]engine.Spec{slow, fast}, engine.WithStore(store), engine.WithGrids(cancelGrid))
	srv := newServer(eng, cfg)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(func() {
		// Unblock any straggling SLOW runs so goroutines exit before the
		// engine's store tempdir is removed.
		srv.cancelJobs()
		ts.Close()
	})
	return ts, eng, srv, gate
}

func jsonDecode(r io.Reader, v interface{}) error {
	return json.NewDecoder(r).Decode(v)
}

func postJob(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestQueueFullAnswers429 pins the bounded-admission contract: with the
// queue saturated by in-flight jobs, a new submission is refused with
// 429 and a Retry-After hint instead of piling up, and the slot freed
// by a finished job is immediately grantable again.
func TestQueueFullAnswers429(t *testing.T) {
	cfg := defaultServerConfig()
	cfg.queueCapacity = 1
	ts, eng, _, gate := lifecycleServer(t, cfg)

	resp := postJob(t, ts, `{"only":["SLOW"]}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, body)
	}

	resp = postJob(t, ts, `{"only":["SLOW"]}`)
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: status %d, want 429: %s", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if !strings.Contains(string(body), "capacity") {
		t.Fatalf("429 body does not explain capacity: %s", body)
	}

	// Synchronous heavy endpoints share the same admission queue.
	r2, err := http.Get(ts.URL + "/v1/report?only=FAST")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("sync report under full queue: status %d, want 429", r2.StatusCode)
	}

	close(gate)
	if err := eng.WaitJobs(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool {
		resp := postJob(t, ts, `{"only":["FAST"]}`)
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode == http.StatusAccepted
	}, "queue slot not released after job finished")
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestClientDisconnectCancelsSweep is the disconnect-cancellation
// acceptance test: a client that hangs up mid-sweep cancels its own
// grid run — started cells observe the cancellation through their
// context, and the engine stops dispatching new cells, visible as
// CellExecutions holding still afterwards.
func TestClientDisconnectCancelsSweep(t *testing.T) {
	// Pin the worker pool well below the 256-cell grid so some cells are
	// provably unstarted when the disconnect lands.
	oldLimit := parallel.Limit()
	parallel.SetLimit(4)
	defer parallel.SetLimit(oldLimit)

	ts, eng, _, _ := lifecycleServer(t, defaultServerConfig())

	reqCtx, hangUp := context.WithCancel(context.Background())
	defer hangUp()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, ts.URL+"/v1/sweeps?grid=GCAN&format=jsonl", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()

	// Wait until the sweep is demonstrably executing cells, then hang up.
	waitFor(t, 5*time.Second, func() bool { return eng.CellExecutions() > 0 },
		"sweep never started executing cells")
	hangUp()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("request did not return after client disconnect")
	}

	// Every parked cell's context must have fired (the request returned,
	// which requires the pool to unwind), and no further cells may start.
	after := eng.CellExecutions()
	if after >= 256 {
		t.Fatalf("engine executed %d cells despite cancellation with 4 workers", after)
	}
	time.Sleep(25 * time.Millisecond)
	if now := eng.CellExecutions(); now != after {
		t.Fatalf("cells kept executing after disconnect: %d -> %d", after, now)
	}
}

// TestDrainLifecycle pins the graceful-shutdown choreography: once
// draining, /readyz answers 503 while /healthz stays 200, new heavy
// work is refused as 503, the in-flight job gets to finish cleanly, and
// Drain returns once it has.
func TestDrainLifecycle(t *testing.T) {
	ts, eng, srv, gate := lifecycleServer(t, defaultServerConfig())

	resp := postJob(t, ts, `{"only":["SLOW"]}`)
	var job engine.Job
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if err := jsonDecode(resp.Body, &job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	drained := make(chan error, 1)
	srv.StartDrain()
	go func() { drained <- srv.Drain(context.Background()) }()

	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz during drain: %d, want 200", code)
	}
	resp = postJob(t, ts, `{"only":["FAST"]}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: status %d, want 503", resp.StatusCode)
	}

	// The in-flight job is still running — drain must be waiting on it.
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v before the in-flight job finished", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not return after the job finished")
	}
	final, err := eng.WaitJob(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != engine.JobDone {
		t.Fatalf("drained job status %q, want done", final.Status)
	}
}

// TestDrainDeadlineCancelsJobs pins the hard half of drain: when the
// deadline passes with a job still running, Drain reports the deadline
// and cancels the job context, and the job lands in status cancelled —
// not failed — with no partial cells cached.
func TestDrainDeadlineCancelsJobs(t *testing.T) {
	ts, eng, srv, _ := lifecycleServer(t, defaultServerConfig())

	resp := postJob(t, ts, `{"only":["SLOW"]}`)
	var job engine.Job
	if err := jsonDecode(resp.Body, &job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("drain under a blocked job returned nil, want deadline error")
	}
	final, err := eng.WaitJob(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != engine.JobCancelled {
		t.Fatalf("hard-cancelled job status %q, want cancelled", final.Status)
	}
	if ts.URL == "" {
		t.Fatal("unreachable")
	}
}

// TestMetricsMatchObservedRun scrapes /metrics after a known request
// sequence and asserts the counters say exactly what happened: two
// /v1/report requests, one execution, one cache hit, matching latency
// histogram count, and live gauges for readiness and queue capacity.
func TestMetricsMatchObservedRun(t *testing.T) {
	cfg := defaultServerConfig()
	cfg.queueCapacity = 3
	ts, _, _, _ := lifecycleServer(t, cfg)

	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/v1/report?only=FAST&format=json")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report %d: status %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		`bccd_requests_total{endpoint="/v1/report",code="200"} 2`,
		`bccd_request_duration_seconds_count{endpoint="/v1/report"} 2`,
		"bccd_spec_executions_total 1",
		"bccd_cache_hits_total 1",
		"bccd_cache_misses_total 1",
		"bccd_ready 1",
		"bccd_queue_capacity 3",
		"bccd_queue_depth 0",
		"bccd_jobs_inflight 0",
		// The intra-cell residency gauges: idle between requests, both
		// shard and cell counts read zero; the peak-resident watermark is
		// merely present (its value depends on what already ran in-process).
		"bccd_intracell_shards_inflight 0",
		"bccd_cells_running 0",
		"bccd_cell_peak_resident_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestMethodNotAllowed pins the 405 hygiene: unsupported methods get a
// JSON 405 listing the allowed methods in the Allow header.
func TestMethodNotAllowed(t *testing.T) {
	ts, _, _, _ := lifecycleServer(t, defaultServerConfig())

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/report", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/report: status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
		t.Fatalf("Allow = %q, want \"GET, HEAD\"", allow)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("405 content type %q, want JSON", ct)
	}
	if !strings.Contains(string(body), "not allowed") {
		t.Errorf("405 body: %s", body)
	}

	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/jobs: status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, POST, HEAD" {
		t.Fatalf("Allow = %q, want \"GET, POST, HEAD\"", allow)
	}
}

// TestBodyLimit pins MaxBytesReader: an oversized POST body answers 413
// without the engine ever seeing the job.
func TestBodyLimit(t *testing.T) {
	cfg := defaultServerConfig()
	cfg.maxBodyBytes = 64
	ts, eng, _, _ := lifecycleServer(t, cfg)

	big := fmt.Sprintf(`{"only":["FAST"],"quick":%s true}`, strings.Repeat(" ", 200))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(big)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413: %s", resp.StatusCode, body)
	}
	if got := len(eng.Jobs()); got != 0 {
		t.Fatalf("oversized submission created %d jobs", got)
	}
}

// TestRateLimit pins the per-client token bucket: burst requests pass,
// the next is a 429 with Retry-After, and monitoring endpoints are
// exempt.
func TestRateLimit(t *testing.T) {
	cfg := defaultServerConfig()
	cfg.rateLimit = 0.001 // effectively no refill within the test
	cfg.rateBurst = 2
	ts, _, _, _ := lifecycleServer(t, cfg)

	for i := 0; i < 2; i++ {
		if code := getJSON(t, ts.URL+"/v1/specs", nil); code != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/specs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("rate-limit Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	// Monitoring endpoints must stay reachable for an over-limit client.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s for rate-limited client: status %d", path, resp.StatusCode)
		}
	}
}

// TestRequestTimeout pins the per-request deadline: a synchronous
// computation that outlives it answers 504 instead of hanging (the
// non-streaming sweep formats, which hold their response until the run
// completes, are where the clean 504 is reachable).
func TestRequestTimeout(t *testing.T) {
	cfg := defaultServerConfig()
	cfg.requestTimeout = 30 * time.Millisecond
	ts, _, _, _ := lifecycleServer(t, cfg)

	code, ct, body := get(t, ts.URL+"/v1/sweeps?grid=GCAN&format=json")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out sweep: status %d, want 504: %s", code, body)
	}
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("504 content type %q, want JSON", ct)
	}
	if !strings.Contains(body, "deadline") {
		t.Errorf("504 body: %s", body)
	}
}
