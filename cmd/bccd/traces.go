package main

import (
	"net/http"

	"bcclique/internal/obs"
)

// listTraces serves GET /v1/traces: the traces currently retained in
// the tracer's ring, most recent first. With tracing off (no
// -trace-buffer) the trace endpoints answer 404 so a client can tell
// "tracing disabled" apart from "no traces yet" (an empty array).
func (s *server) listTraces(w http.ResponseWriter, r *http.Request) {
	tr := s.eng.Tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound, "tracing is disabled (start bccd with -trace-buffer > 0)")
		return
	}
	sums := tr.Traces()
	if sums == nil {
		sums = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, sums)
}

// getTrace serves GET /v1/traces/{id}: one trace's spans, as JSON
// (default) or as a Chrome trace_event array (?format=chrome) loadable
// in Perfetto or about:tracing. The id is a trace ID — a job ID for
// submitted jobs, the X-Trace-Id of a synchronous request otherwise.
func (s *server) getTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.eng.Tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound, "tracing is disabled (start bccd with -trace-buffer > 0)")
		return
	}
	id := r.PathValue("id")
	recs := tr.Trace(id)
	if len(recs) == 0 {
		writeError(w, http.StatusNotFound, "no trace %q (evicted from the ring, or never recorded)", id)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, obs.ToJSON(recs))
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace-`+id+`.json"`)
		obs.WriteChrome(w, recs)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or chrome)", format)
	}
}
