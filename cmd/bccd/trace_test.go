package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bcclique/internal/engine"
	"bcclique/internal/harness"
	"bcclique/internal/obs"
	"bcclique/internal/results"
)

// tracedServer builds a server whose engine traces into a fresh ring,
// with the server's structured log captured in the returned buffer.
// The engine serves the real registry (E13 is the cheap spec the trace
// tests exercise) over a temp-dir cache.
func tracedServer(t *testing.T) (*httptest.Server, *server, *syncBuffer) {
	t.Helper()
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	buf := &syncBuffer{}
	eng := harness.NewEngine(engine.WithStore(store), engine.WithTracer(obs.New(1024)))
	cfg := defaultServerConfig()
	cfg.logger = obs.NewLogger(buf, "bccd")
	srv := newServer(eng, cfg)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(func() {
		srv.cancelJobs()
		ts.Close()
	})
	return ts, srv, buf
}

// syncBuffer is a mutex-guarded bytes.Buffer so concurrent slog writes
// and test reads don't race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logRecords decodes every JSON line the server logged so far.
func (b *syncBuffer) logRecords(t *testing.T) []map[string]any {
	t.Helper()
	var recs []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		recs = append(recs, m)
	}
	return recs
}

// TestTraceEndpoints drives the full trace-serving loop: a traced
// synchronous request hands back X-Trace-Id, the trace is listed at
// /v1/traces, and /v1/traces/{id} serves both JSON and a well-formed
// Chrome trace_event array.
func TestTraceEndpoints(t *testing.T) {
	ts, _, _ := tracedServer(t)

	resp, err := http.Get(ts.URL + "/v1/report?only=E13&quick=1&seed=1&format=md")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("traced request returned no X-Trace-Id")
	}

	var sums []struct {
		TraceID string `json:"trace_id"`
		Root    string `json:"root"`
		Spans   int    `json:"spans"`
	}
	if code := getJSON(t, ts.URL+"/v1/traces", &sums); code != http.StatusOK {
		t.Fatalf("/v1/traces status %d", code)
	}
	found := false
	for _, s := range sums {
		if s.TraceID == traceID {
			found = true
			if s.Root != "http /v1/report" {
				t.Errorf("trace root = %q", s.Root)
			}
			if s.Spans < 2 {
				t.Errorf("trace has %d spans, want the request root plus the spec tree", s.Spans)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not listed in %+v", traceID, sums)
	}

	var spans []struct {
		TraceID  string         `json:"trace_id"`
		SpanID   string         `json:"span_id"`
		ParentID string         `json:"parent_id"`
		Name     string         `json:"name"`
		Attrs    map[string]any `json:"attrs"`
	}
	if code := getJSON(t, ts.URL+"/v1/traces/"+traceID, &spans); code != http.StatusOK {
		t.Fatalf("/v1/traces/%s status %d", traceID, code)
	}
	if len(spans) < 2 || spans[0].Name != "http /v1/report" || spans[0].ParentID != "" {
		t.Fatalf("unexpected span tree head: %+v", spans)
	}
	for _, sp := range spans {
		if sp.TraceID != traceID {
			t.Errorf("span %s carries trace %s", sp.Name, sp.TraceID)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/traces/" + traceID + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome format status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("chrome Content-Type %q", ct)
	}
	var events []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		PID  int     `json:"pid"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	if len(events) != len(spans) {
		t.Errorf("chrome trace has %d events for %d spans", len(events), len(spans))
	}
	for _, ev := range events {
		if ev.Ph != "X" || ev.PID != 1 {
			t.Errorf("malformed chrome event: %+v", ev)
		}
	}
}

// TestTraceEndpointsDisabled pins the tracing-off contract: without a
// tracer both endpoints answer 404 (distinguishable from "no traces
// yet", which is a 200 with an empty array), and traced-request
// plumbing degrades to no X-Trace-Id rather than an error.
func TestTraceEndpointsDisabled(t *testing.T) {
	ts, _ := testServer(t) // no tracer
	for _, path := range []string{"/v1/traces", "/v1/traces/whatever"} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusNotFound {
			t.Errorf("GET %s with tracing disabled: status %d, want 404", path, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/report?only=E13&quick=1&seed=1&format=md")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status %d", resp.StatusCode)
	}
	if id := resp.Header.Get("X-Trace-Id"); id != "" {
		t.Errorf("untraced server set X-Trace-Id %q", id)
	}
}

// TestTraceNotFoundAndBadFormat covers the remaining error shapes of
// /v1/traces/{id}: an unknown (or evicted) trace ID is 404, an unknown
// format is 400.
func TestTraceNotFoundAndBadFormat(t *testing.T) {
	ts, _, _ := tracedServer(t)
	if code := getJSON(t, ts.URL+"/v1/traces/no-such-trace", nil); code != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", code)
	}

	resp, err := http.Get(ts.URL + "/v1/report?only=E13&quick=1&seed=1&format=md")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	traceID := resp.Header.Get("X-Trace-Id")
	if code := getJSON(t, ts.URL+"/v1/traces/"+traceID+"?format=svg", nil); code != http.StatusBadRequest {
		t.Errorf("bad format: status %d, want 400", code)
	}
}

// TestJobTraceID pins the async contract: a submitted job's X-Trace-Id
// is the job ID itself, and once the job completes its span tree is
// fetchable at /v1/traces/{job id}.
func TestJobTraceID(t *testing.T) {
	ts, srv, _ := tracedServer(t)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"only":["E13"],"quick":true,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != job.ID {
		t.Errorf("X-Trace-Id = %q, want job ID %q", got, job.ID)
	}
	// Spans land in the ring as they end, leaves first (the store.get
	// span ends long before the job root), so poll until the completed
	// tree — root span first in pre-order — is fetchable.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var spans []struct {
			Name string `json:"name"`
		}
		code := getJSON(t, ts.URL+"/v1/traces/"+job.ID, &spans)
		if code == http.StatusOK && spans[0].Name == "job" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("completed job trace (root span first) never appeared at /v1/traces/{job}")
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = srv
}

// TestCellMetricsFromSpans checks the OnEnd bridge from trace records
// to /metrics: after a sweep runs, the per-cell histograms carry
// protocol×family samples.
func TestCellMetricsFromSpans(t *testing.T) {
	ts, _, _ := tracedServer(t)
	resp, err := http.Get(ts.URL + "/v1/sweeps?grid=E17&format=csv&quick=1&seed=1&protocols=flood-b1&families=two-cycle&sizes=16")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		`bccd_cell_seconds_count{protocol="flood-b1",family="two-cycle"}`,
		`bccd_cell_rounds_count{protocol="flood-b1",family="two-cycle"}`,
		`bccd_cell_bits_count{protocol="flood-b1",family="two-cycle"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestRejectionLogging pins satellite 3: shed requests leave structured
// records naming the client, route, and queue depth — for all three
// rejection reasons (queue_full, draining, rate_limit).
func TestRejectionLogging(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	buf := &syncBuffer{}
	cfg := defaultServerConfig()
	cfg.queueCapacity = 1
	cfg.logger = obs.NewLogger(buf, "bccd")
	srv := newServer(harness.NewEngine(engine.WithStore(store)), cfg)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(func() {
		srv.cancelJobs()
		ts.Close()
	})

	// Hold the only admission slot so the next heavy request is shed.
	release, err := srv.queue.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/v1/report?only=E13", nil); code != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", code)
	}
	release()

	srv.StartDrain()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"only":["E13"]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d, want 503", resp.StatusCode)
	}

	byReason := make(map[string]map[string]any)
	for _, rec := range buf.logRecords(t) {
		if rec["msg"] == "request rejected" {
			byReason[rec["reason"].(string)] = rec
		}
	}
	for reason, route := range map[string]string{
		"queue_full": "/v1/report",
		"draining":   "/v1/jobs",
	} {
		rec, ok := byReason[reason]
		if !ok {
			t.Errorf("no %q rejection record in log:\n%s", reason, buf.String())
			continue
		}
		for _, field := range []string{"client", "route", "queue_depth", "component"} {
			if _, ok := rec[field]; !ok {
				t.Errorf("%s rejection record missing %s: %v", reason, field, rec)
			}
		}
		if got := rec["route"]; got != route {
			t.Errorf("%s rejection route = %v, want %s", reason, got, route)
		}
	}
}

// TestDrainHardCancelLogging pins the other half of satellite 3: when
// the drain deadline passes with jobs still running, the hard-cancel
// leaves an error-level record with the active job count.
func TestDrainHardCancelLogging(t *testing.T) {
	cfg := defaultServerConfig()
	buf := &syncBuffer{}
	cfg.logger = obs.NewLogger(buf, "bccd")
	ts, _, srv, gate := lifecycleServer(t, cfg)
	defer close(gate)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"only":["SLOW"]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	// A tiny drain deadline forces the hard-cancel path at once.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := srv.Drain(drainCtx); err == nil {
		t.Fatal("Drain with expired deadline and a running job returned nil")
	}
	var sawCancel bool
	for _, rec := range buf.logRecords(t) {
		if rec["msg"] == "drain deadline exceeded; hard-cancelling in-flight jobs" {
			sawCancel = true
			if rec["level"] != "ERROR" {
				t.Errorf("hard-cancel logged at %v, want ERROR", rec["level"])
			}
			if _, ok := rec["active_jobs"]; !ok {
				t.Errorf("hard-cancel record missing active_jobs: %v", rec)
			}
		}
	}
	if !sawCancel {
		t.Errorf("no hard-cancel record in log:\n%s", buf.String())
	}
}

// TestConcurrentTracingHammer exercises the tracer's shared state the
// way production does: many goroutines running traced requests while
// others read /v1/traces and export Chrome traces mid-flight. Its job
// is to give the race detector surface (make serve-race); without
// -race it still shakes out ring-snapshot bugs.
func TestConcurrentTracingHammer(t *testing.T) {
	ts, _, _ := tracedServer(t)
	shots := 12
	if raceEnabled {
		shots = 24
	}
	var wg sync.WaitGroup
	get := func(url string) {
		defer wg.Done()
		resp, err := http.Get(url)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	for i := 0; i < shots; i++ {
		wg.Add(3)
		go get(fmt.Sprintf("%s/v1/report?only=E13&quick=1&seed=%d&format=md", ts.URL, i+1))
		go get(ts.URL + "/v1/traces")
		go get(fmt.Sprintf("%s/v1/traces/req-%d-report?format=chrome", ts.URL, i+1))
	}
	wg.Wait()
	var sums []struct {
		TraceID string `json:"trace_id"`
	}
	if code := getJSON(t, ts.URL+"/v1/traces", &sums); code != http.StatusOK || len(sums) == 0 {
		t.Fatalf("after hammer: /v1/traces status %d with %d traces", code, len(sums))
	}
}
