package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"bcclique/internal/engine"
)

// errorTestServer builds a server over an engine whose registry contains
// deliberately failing entries: EBAD (a spec that always errors), EFAIL
// (a grid whose only cell errors immediately) and EMID (a two-cell grid
// whose first cell succeeds and whose second cell waits for the first,
// then errors — a deterministic mid-stream failure regardless of worker
// scheduling).
func errorTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	badSpec := engine.Spec{
		ID:    "EBAD",
		Title: "always fails",
		Run: func(context.Context, engine.Config, engine.Params) (*engine.Result, error) {
			return nil, fmt.Errorf("synthetic spec failure")
		},
	}
	failGrid := engine.GridSpec{
		ID: "EFAIL", Title: "failing grid",
		Protocols: []string{"p"}, Families: []string{"f"},
		Sizes: []int{8}, Seeds: 1,
		Headers: []string{"family", "protocol", "n"},
		CellKey: func(string, string) (string, error) { return "k", nil },
		RunCell: func(context.Context, engine.Config, engine.GridCell, []int64) ([]string, error) {
			return nil, fmt.Errorf("synthetic cell failure")
		},
	}
	// The succeeding cell carries the larger n, so RunGrid's
	// descending-n dispatch starts it first under any worker count (a
	// single worker runs it to completion before the failing cell's
	// gate is checked — no livelock); declaring it first in Sizes keeps
	// it the first streamed row.
	var firstDone atomic.Bool
	midGrid := engine.GridSpec{
		ID: "EMID", Title: "mid-stream failing grid",
		Protocols: []string{"p"}, Families: []string{"f"},
		Sizes: []int{16, 8}, Seeds: 1,
		Headers: []string{"family", "protocol", "n"},
		CellKey: func(string, string) (string, error) { return "k", nil },
		RunCell: func(_ context.Context, _ engine.Config, c engine.GridCell, _ []int64) ([]string, error) {
			if c.N == 16 {
				defer firstDone.Store(true)
				return []string{c.Family, c.Protocol, "16"}, nil
			}
			for !firstDone.Load() {
			} // fail strictly after the first cell's row exists
			return nil, fmt.Errorf("synthetic mid-stream failure")
		},
	}
	eng := engine.New([]engine.Spec{badSpec}, engine.WithGrids(failGrid, midGrid))
	ts := httptest.NewServer(newServer(eng, defaultServerConfig()).routes())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (code int, contentType, body string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
}

// TestSweepsErrorPaths pins the error contract of every /v1/sweeps
// format: validation failures and pre-stream run failures answer a JSON
// error status with a JSON content type (never an empty or
// wrongly-typed 200), and only genuinely mid-stream failures fall back
// to the in-band error trailer.
func TestSweepsErrorPaths(t *testing.T) {
	ts := errorTestServer(t)
	cases := []struct {
		name     string
		query    string
		wantCode int
		wantCT   string
		wantBody string
	}{
		{"unknown grid", "grid=E99", http.StatusNotFound, "application/json", "unknown grid"},
		{"bad seed", "grid=EFAIL&seed=abc", http.StatusBadRequest, "application/json", "bad seed"},
		{"bad quick", "grid=EFAIL&quick=maybe", http.StatusBadRequest, "application/json", "bad quick"},
		{"unknown format", "grid=EFAIL&format=yaml", http.StatusBadRequest, "application/json", "unknown format"},
		// A run that fails before any byte is flushed must be a real
		// JSON 500 in every format — csv previously answered a silently
		// empty 200, and md stamped text/markdown on the JSON error.
		{"run failure md", "grid=EFAIL", http.StatusInternalServerError, "application/json", "synthetic cell failure"},
		{"run failure md explicit", "grid=EFAIL&format=md", http.StatusInternalServerError, "application/json", "synthetic cell failure"},
		{"run failure json", "grid=EFAIL&format=json", http.StatusInternalServerError, "application/json", "synthetic cell failure"},
		{"run failure jsonl", "grid=EFAIL&format=jsonl", http.StatusInternalServerError, "application/json", "synthetic cell failure"},
		{"run failure csv", "grid=EFAIL&format=csv", http.StatusInternalServerError, "application/json", "synthetic cell failure"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, ct, body := get(t, ts.URL+"/v1/sweeps?"+tc.query)
			if code != tc.wantCode {
				t.Errorf("status = %d, want %d (body %q)", code, tc.wantCode, body)
			}
			if !strings.HasPrefix(ct, tc.wantCT) {
				t.Errorf("content type = %q, want prefix %q", ct, tc.wantCT)
			}
			if !strings.Contains(body, tc.wantBody) {
				t.Errorf("body %q does not mention %q", body, tc.wantBody)
			}
		})
	}
}

// TestSweepsMidStreamTrailer pins the row-format trailer contract: once
// a row has been flushed the stream stays a 200 with its declared
// content type, and the failure arrives as a final "error:" trailer
// line after the streamed rows.
func TestSweepsMidStreamTrailer(t *testing.T) {
	for _, tc := range []struct {
		format, wantCT string
		wantRows       int // payload lines before the trailer
	}{
		{"jsonl", "application/x-ndjson", 1},
		{"csv", "text/csv", 2}, // header + first row
	} {
		t.Run(tc.format, func(t *testing.T) {
			ts := errorTestServer(t)
			code, ct, body := get(t, ts.URL+"/v1/sweeps?grid=EMID&format="+tc.format)
			if code != http.StatusOK {
				t.Fatalf("status = %d, want 200 (mid-stream headers are already sent)", code)
			}
			if !strings.HasPrefix(ct, tc.wantCT) {
				t.Errorf("content type = %q, want prefix %q", ct, tc.wantCT)
			}
			lines := strings.Split(strings.TrimSpace(body), "\n")
			var payload, trailers []string
			for _, l := range lines {
				if strings.HasPrefix(l, "error:") {
					trailers = append(trailers, l)
				} else if l != "" {
					payload = append(payload, l)
				}
			}
			if len(payload) != tc.wantRows {
				t.Errorf("streamed %d payload lines, want %d:\n%s", len(payload), tc.wantRows, body)
			}
			if len(trailers) != 1 || !strings.Contains(trailers[0], "synthetic mid-stream failure") {
				t.Errorf("trailer = %v, want one error trailer naming the failure", trailers)
			}
		})
	}
}

// TestReportErrorPaths pins the same guard on /v1/report, for every
// format: the renderer's front matter is deferred until the first
// completed section, so a run that fails before producing anything
// answers a clean JSON 500 — no markdown header followed by a trailer.
func TestReportErrorPaths(t *testing.T) {
	ts := errorTestServer(t)
	for _, format := range []string{"md", "json", "jsonl"} {
		code, ct, body := get(t, ts.URL+"/v1/report?only=EBAD&format="+format)
		if code != http.StatusInternalServerError || !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s: status %d content type %q, want JSON 500 (body %q)", format, code, ct, body)
		}
		if !strings.Contains(body, "synthetic spec failure") {
			t.Errorf("%s body %q does not name the failure", format, body)
		}
	}
}

// TestSweepsMarkdownSuccessType pins that the md success path still
// declares text/markdown now that the content type is set only after
// the grid has run.
func TestSweepsMarkdownSuccessType(t *testing.T) {
	ts, _ := testServer(t)
	code, ct, body := get(t, ts.URL+"/v1/sweeps?grid=E18&quick=1&format=md")
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/markdown") {
		t.Errorf("status %d content type %q, want markdown 200", code, ct)
	}
	if !strings.Contains(body, "## E18") {
		t.Errorf("markdown body malformed:\n%s", body)
	}
}
