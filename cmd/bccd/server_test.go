package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bcclique/internal/engine"
	"bcclique/internal/harness"
	"bcclique/internal/results"
)

// testServer builds a server over a store in a temp dir. Fast tests use
// the cheap experiments (E13) so the suite stays quick.
func testServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := harness.NewEngine(engine.WithStore(store))
	ts := httptest.NewServer(newServer(eng, defaultServerConfig()).routes())
	t.Cleanup(ts.Close)
	return ts, eng
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestReportServedFromCache is the serving acceptance test: a repeated
// GET /v1/report is served hot from the cache with zero re-executed
// experiments, byte-identical to the first response.
func TestReportServedFromCache(t *testing.T) {
	ts, eng := testServer(t)
	url := ts.URL + "/v1/report?only=E13&quick=1&seed=1&format=md"

	fetch := func() string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/markdown") {
			t.Errorf("content type %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	first := fetch()
	if !strings.Contains(first, "## E13") || !strings.Contains(first, "1 experiments completed.") {
		t.Fatalf("report malformed:\n%s", first)
	}
	execsAfterFirst := eng.Executions()
	if execsAfterFirst != 1 {
		t.Fatalf("first request executed %d experiments, want 1", execsAfterFirst)
	}

	second := fetch()
	if got := eng.Executions(); got != execsAfterFirst {
		t.Errorf("repeated request re-executed experiments: %d -> %d", execsAfterFirst, got)
	}
	if first != second {
		t.Error("cached report is not byte-identical to the first response")
	}

	// JSON format is served from the same cache entries.
	var doc struct {
		Results []struct {
			ID string `json:"id"`
		} `json:"results"`
		Count int `json:"count"`
	}
	if code := getJSON(t, ts.URL+"/v1/report?only=E13&quick=1&seed=1&format=json", &doc); code != http.StatusOK {
		t.Fatalf("json status %d", code)
	}
	if doc.Count != 1 || len(doc.Results) != 1 || doc.Results[0].ID != "E13" {
		t.Errorf("json doc = %+v", doc)
	}
	if got := eng.Executions(); got != execsAfterFirst {
		t.Errorf("json request re-executed experiments: %d -> %d", execsAfterFirst, got)
	}
}

func TestReportValidation(t *testing.T) {
	ts, _ := testServer(t)
	for query, wantCode := range map[string]int{
		"only=E99":            http.StatusBadRequest,
		"format=yaml":         http.StatusBadRequest,
		"seed=abc":            http.StatusBadRequest,
		"quick=maybe":         http.StatusBadRequest,
		"only=E13&quick=true": http.StatusOK,
	} {
		var out map[string]interface{}
		code := getJSON(t, ts.URL+"/v1/report?"+query, nil)
		if code != wantCode {
			t.Errorf("GET /v1/report?%s = %d, want %d (%v)", query, code, wantCode, out)
		}
	}
}

func TestJobEndpoints(t *testing.T) {
	ts, _ := testServer(t)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"only":["E13"],"quick":true,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var job engine.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit: status %d job %+v", resp.StatusCode, job)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &job); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if job.Status == engine.JobDone || job.Status == engine.JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if job.Status != engine.JobDone || len(job.Results) != 1 || job.Results[0].ID != "E13" {
		t.Fatalf("job = %+v", job)
	}

	var jobs []engine.Job
	if code := getJSON(t, ts.URL+"/v1/jobs", &jobs); code != http.StatusOK || len(jobs) != 1 {
		t.Errorf("list: %d jobs, code %d", len(jobs), code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown job code %d", code)
	}

	// Unknown IDs and bad bodies are rejected up front.
	for _, body := range []string{`{"only":["E99"]}`, `{"bogus":1}`, `not json`} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestSweepsEndpoint covers GET /v1/sweeps: grid listing, the four
// render formats, per-cell cache hits on repeat requests, and
// validation.
func TestSweepsEndpoint(t *testing.T) {
	ts, eng := testServer(t)

	// Listing without ?grid=.
	var grids []struct {
		ID        string   `json:"id"`
		Protocols []string `json:"protocols"`
		Families  []string `json:"families"`
	}
	if code := getJSON(t, ts.URL+"/v1/sweeps", &grids); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(grids) != 2 || grids[0].ID != "E17" || grids[1].ID != "E18" {
		t.Fatalf("grids = %+v", grids)
	}
	if len(grids[0].Protocols) < 3 || len(grids[0].Families) < 4 {
		t.Errorf("E17 axes too small: %+v", grids[0])
	}

	fetch := func(query string) (int, string) {
		resp, err := http.Get(ts.URL + "/v1/sweeps?" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// CSV: header + one line per cell, streamed in cell order.
	code, csvBody := fetch("grid=E18&quick=1&format=csv")
	if code != http.StatusOK {
		t.Fatalf("csv status %d", code)
	}
	lines := strings.Split(strings.TrimSpace(csvBody), "\n")
	wantCells := 3 * 4 * 1 // families × protocols × quick sizes
	if len(lines) != wantCells+1 {
		t.Fatalf("csv has %d lines, want %d:\n%s", len(lines), wantCells+1, csvBody)
	}
	if !strings.HasPrefix(lines[0], "family,protocol,n") {
		t.Errorf("csv header = %q", lines[0])
	}
	cellsAfterFirst := eng.CellExecutions()
	if cellsAfterFirst != int64(wantCells) {
		t.Errorf("first sweep executed %d cells, want %d", cellsAfterFirst, wantCells)
	}

	// Repeat in another format: served from the per-cell cache.
	code, mdBody := fetch("grid=E18&quick=1&format=md")
	if code != http.StatusOK || !strings.Contains(mdBody, "## E18") {
		t.Fatalf("md status %d body:\n%s", code, mdBody)
	}
	if got := eng.CellExecutions(); got != cellsAfterFirst {
		t.Errorf("repeat sweep re-executed cells: %d -> %d", cellsAfterFirst, got)
	}

	// JSONL: one object per cell.
	code, jsonlBody := fetch("grid=E18&quick=1&format=jsonl")
	if code != http.StatusOK {
		t.Fatalf("jsonl status %d", code)
	}
	jl := strings.Split(strings.TrimSpace(jsonlBody), "\n")
	if len(jl) != wantCells {
		t.Fatalf("jsonl has %d lines, want %d", len(jl), wantCells)
	}
	var rowObj struct {
		Grid  string            `json:"grid"`
		Cells map[string]string `json:"cells"`
	}
	if err := json.Unmarshal([]byte(jl[0]), &rowObj); err != nil {
		t.Fatalf("jsonl line: %v", err)
	}
	if rowObj.Grid != "E18" || rowObj.Cells["silent wrong"] != "0" {
		t.Errorf("jsonl row = %+v", rowObj)
	}

	// Axis restriction: a targeted slice, CLI-flag semantics. The
	// narrowed run shares the per-cell cache with the full quick run
	// above, so the cells it covers serve without recomputation.
	cellsBefore := eng.CellExecutions()
	code, slice := fetch("grid=E18&quick=1&format=csv&protocols=boruvka&families=planted-2")
	if code != http.StatusOK {
		t.Fatalf("restricted csv status %d", code)
	}
	sliceLines := strings.Split(strings.TrimSpace(slice), "\n")
	if len(sliceLines) != 2 || !strings.Contains(sliceLines[1], "planted-2,boruvka") {
		t.Errorf("restricted slice = %q", slice)
	}
	if got := eng.CellExecutions(); got != cellsBefore {
		t.Errorf("restricted slice re-executed cells: %d -> %d", cellsBefore, got)
	}
	// A restricted size ladder runs only its own cells.
	code, slice = fetch("grid=E18&format=csv&protocols=boruvka&families=planted-2&sizes=16")
	if code != http.StatusOK || len(strings.Split(strings.TrimSpace(slice), "\n")) != 2 {
		t.Errorf("size-restricted slice: status %d body %q", code, slice)
	}

	// Validation.
	if code, _ := fetch("grid=E99"); code != http.StatusNotFound {
		t.Errorf("unknown grid status %d", code)
	}
	if code, _ := fetch("grid=E18&format=yaml"); code != http.StatusBadRequest {
		t.Errorf("unknown format status %d", code)
	}
	if code, _ := fetch("grid=E18&seed=abc"); code != http.StatusBadRequest {
		t.Errorf("bad seed status %d", code)
	}
	if code, _ := fetch("grid=E18&protocols=nope"); code != http.StatusBadRequest {
		t.Errorf("unknown restricted protocol status %d", code)
	}
	if code, _ := fetch("grid=E18&sizes=abc"); code != http.StatusBadRequest {
		t.Errorf("bad sizes status %d", code)
	}
	if code, _ := fetch("grid=E18&sizes=-1"); code != http.StatusBadRequest {
		t.Errorf("non-positive sizes status %d", code)
	}
}

func TestSpecsAndHealth(t *testing.T) {
	ts, _ := testServer(t)
	var specs []struct {
		ID  string `json:"id"`
		Key string `json:"key"`
	}
	if code := getJSON(t, ts.URL+"/v1/specs", &specs); code != http.StatusOK {
		t.Fatalf("specs status %d", code)
	}
	if len(specs) != 18 || specs[0].ID != "E01" || specs[16].ID != "E17" || specs[17].ID != "E18" {
		t.Errorf("specs = %d entries", len(specs))
	}
	for _, s := range specs {
		if s.Key == "" {
			t.Errorf("spec %s missing canonical key", s.ID)
		}
	}
	var health struct {
		Status   string `json:"status"`
		CacheDir string `json:"cache_dir"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Errorf("health = %+v, code %d", health, code)
	}
	if health.CacheDir == "" {
		t.Error("health should report the cache dir")
	}
}
