//go:build race

package main

// raceEnabled scales the concurrent-tracing hammer up under the race
// detector, where the extra interleavings are the point of the test.
const raceEnabled = true
