// Command bccd is the experiment job server: an HTTP frontend over the
// experiment engine and the shared content-addressed result cache, so
// many concurrent clients can request experiment results and pay for
// each (spec, config, build) computation exactly once.
//
// Usage:
//
//	bccd [-addr :8371] [-cache-dir DIR|none] [-parallel N]
//
// Endpoints:
//
//	POST /v1/jobs          submit a spec set: {"only":["E05"],"quick":true,"seed":1}
//	GET  /v1/jobs          list submitted jobs (newest first)
//	GET  /v1/jobs/{id}     job status, progress events, and results as JSON
//	GET  /v1/report        render a report: ?only=E05,E07&format=md|json|jsonl&quick=1&seed=1
//	GET  /v1/sweeps        list sweep grids; ?grid=E17&format=md|json|jsonl|csv runs one
//	                       through the per-cell cache (csv/jsonl stream rows in cell order)
//	GET  /v1/specs         the experiment registry (E01–E16 + the E17/E18 grids)
//	GET  /healthz          liveness plus cache statistics
//
// Identical concurrent requests share one computation (single-flight)
// and repeated requests are served hot from the cache with zero
// re-executed experiments.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"bcclique/internal/engine"
	"bcclique/internal/harness"
	"bcclique/internal/parallel"
	"bcclique/internal/results"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bccd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8371", "listen address")
		cacheDir = flag.String("cache-dir", "", "result cache directory (default: <user cache dir>/bcclique, \"none\" disables caching)")
		par      = flag.Int("parallel", 0, "worker count for the experiment engine (0 = all CPUs)")
	)
	flag.Parse()
	parallel.SetLimit(*par)

	store, err := results.OpenFlag(*cacheDir)
	if err != nil {
		return err
	}
	var opts []engine.Option
	if store != nil {
		fmt.Fprintf(os.Stderr, "bccd: result cache at %s\n", store.Dir())
		opts = append(opts, engine.WithStore(store))
	} else {
		fmt.Fprintln(os.Stderr, "bccd: running uncached")
	}
	srv := newServer(harness.NewEngine(opts...))
	fmt.Fprintf(os.Stderr, "bccd: listening on %s\n", *addr)
	return http.ListenAndServe(*addr, srv.routes())
}
