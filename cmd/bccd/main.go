// Command bccd is the experiment job server: an HTTP frontend over the
// experiment engine and the shared content-addressed result cache, so
// many concurrent clients can request experiment results and pay for
// each (spec, config, build) computation exactly once.
//
// Usage:
//
//	bccd [-addr :8371] [-cache-dir DIR|none] [-parallel N]
//	     [-queue N] [-request-timeout D] [-rate-limit RPS] [-rate-burst N]
//	     [-max-body BYTES] [-drain-timeout D] [-trace-buffer N] [-debug-addr ADDR]
//	     [-fault-profile PROFILE]
//
// Endpoints:
//
//	POST /v1/jobs          submit a spec set: {"only":["E05"],"quick":true,"seed":1}
//	GET  /v1/jobs          list submitted jobs (newest first)
//	GET  /v1/jobs/{id}     job status, progress events, and results as JSON
//	GET  /v1/report        render a report: ?only=E05,E07&format=md|json|jsonl&quick=1&seed=1
//	GET  /v1/sweeps        list sweep grids; ?grid=E17&format=md|json|jsonl|csv runs one
//	                       through the per-cell cache (csv/jsonl stream rows in cell order)
//	GET  /v1/specs         the experiment registry (E01–E16 + the E17/E18 grids)
//	GET  /v1/traces        recent traces (ring-buffered); /v1/traces/{id} one span tree
//	                       as JSON, or ?format=chrome for Perfetto/about:tracing
//	GET  /healthz          liveness plus cache statistics (keeps answering 200 during drain)
//	GET  /readyz           readiness: 200 while accepting work, 503 once draining
//	GET  /metrics          Prometheus text-format metrics (stdlib implementation)
//
// Every request and job runs under a span tree (HTTP → job → grid →
// cell → simulated phases) retained in an in-process ring and served at
// /v1/traces; responses carry the trace ID in X-Trace-Id. -trace-buffer 0
// disables tracing entirely. -debug-addr exposes net/http/pprof on a
// separate listener (never the public mux). Logs are JSON lines on
// stderr with trace/span IDs attached where available.
//
// Identical concurrent requests share one computation (single-flight)
// and repeated requests are served hot from the cache with zero
// re-executed experiments.
//
// Serving armor: heavy work (jobs, reports, sweeps) passes a bounded
// admission queue — a full queue answers 429 with Retry-After, never an
// unbounded pile-up. Synchronous computations run under the request
// context bounded by -request-timeout, so a client that disconnects
// cancels its own computation at the next simulated round (completed
// cells stay cached for the retry). -rate-limit enforces a per-client
// token bucket on the /v1 endpoints. On SIGTERM/SIGINT the server
// drains gracefully: /readyz flips to 503, new heavy work is rejected,
// in-flight jobs get -drain-timeout to finish (then are cancelled), and
// the HTTP listener shuts down.
//
// Fault tolerance: the result store verifies every entry against a
// checksummed envelope (corrupt entries are quarantined and recomputed),
// retries transient backend errors with jittered backoff, and degrades
// to compute-through when a circuit breaker over the backend's rolling
// error rate opens — responses then carry X-Cache-State: bypass and stay
// correct, just uncached. -fault-profile wires a deterministic
// fault-injecting layer under the retry decorator for chaos testing:
// 'error=RATE,latency=RATE:DUR,torn=RATE,enospc=RATE,hang=RATE,seed=N'.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bcclique/internal/engine"
	"bcclique/internal/fault"
	"bcclique/internal/harness"
	"bcclique/internal/obs"
	"bcclique/internal/parallel"
	"bcclique/internal/results"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bccd:", err)
		os.Exit(1)
	}
}

func run() error {
	def := defaultServerConfig()
	var (
		addr     = flag.String("addr", ":8371", "listen address")
		cacheDir = flag.String("cache-dir", "", "result cache directory (default: <user cache dir>/bcclique, \"none\" disables caching)")
		par      = flag.Int("parallel", 0, "worker count for the experiment engine (0 = all CPUs)")

		queueCap   = flag.Int("queue", def.queueCapacity, "max concurrently admitted heavy requests (jobs + sync reports/sweeps); excess gets 429 + Retry-After")
		reqTimeout = flag.Duration("request-timeout", def.requestTimeout, "per-request computation deadline for sync endpoints (0 disables)")
		rateLimit  = flag.Float64("rate-limit", def.rateLimit, "per-client requests/second on /v1 endpoints (0 disables)")
		rateBurst  = flag.Int("rate-burst", def.rateBurst, "per-client burst size for -rate-limit")
		maxBody    = flag.Int64("max-body", def.maxBodyBytes, "max POST body size in bytes")
		drainTime  = flag.Duration("drain-timeout", 30*time.Second, "how long in-flight jobs may run after SIGTERM before being cancelled")

		traceBuf  = flag.Int("trace-buffer", obs.DefaultCapacity, "completed spans retained for /v1/traces (0 disables tracing)")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty disables; never exposed on -addr)")

		faultProfile = flag.String("fault-profile", "", "inject deterministic store faults, e.g. 'error=0.05,latency=0.05:2ms,torn=0.05,seed=7' (chaos testing; empty disables)")
	)
	flag.Parse()
	parallel.SetLimit(*par)

	logger := obs.NewLogger(os.Stderr, "bccd")

	profile, err := fault.ParseProfile(*faultProfile)
	if err != nil {
		return err
	}
	backend, err := results.OpenFlagBackend(*cacheDir)
	if err != nil {
		return err
	}
	var store *results.Store
	if backend != nil {
		// Decoration order matters: faults inject below the retry layer so
		// retries absorb injected transients, exactly as they would absorb
		// real ones.
		var b results.Backend = backend
		if *faultProfile != "" {
			logger.Warn("fault injection enabled", "profile", *faultProfile)
			b = fault.Wrap(b, profile)
		}
		b = results.WithRetry(b, results.DefaultRetryPolicy(), profile.Seed+1)
		store = results.New(b, results.WithLogger(logger))
	}
	var opts []engine.Option
	if store != nil {
		logger.Info("result cache open", "dir", store.Dir())
		opts = append(opts, engine.WithStore(store))
	} else {
		logger.Info("running uncached")
	}
	var tracer *obs.Tracer
	if *traceBuf > 0 {
		tracer = obs.New(*traceBuf)
		opts = append(opts, engine.WithTracer(tracer))
	}
	cfg := serverConfig{
		queueCapacity:  *queueCap,
		requestTimeout: *reqTimeout,
		rateLimit:      *rateLimit,
		rateBurst:      *rateBurst,
		maxBodyBytes:   *maxBody,
		retryAfter:     def.retryAfter,
		logger:         logger,
	}
	srv := newServer(harness.NewEngine(opts...), cfg)

	// The pprof listener is deliberately a second http.Server on its own
	// address: profiling endpoints leak heap contents and must never ride
	// the public mux. Bind -debug-addr to localhost in production.
	if *debugAddr != "" {
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv := &http.Server{Addr: *debugAddr, Handler: debugMux}
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "error", err.Error())
			}
		}()
		defer debugSrv.Close()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "tracing", tracer != nil)
		errCh <- httpSrv.ListenAndServe()
	}()

	// Drain choreography on SIGTERM/SIGINT: flip /readyz so load
	// balancers stop routing here, reject new heavy work, let in-flight
	// jobs finish under the drain deadline (cancelling stragglers at
	// their next simulated round), then close the listener. A second
	// signal kills the process immediately (NotifyContext unregisters
	// after the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("draining", "timeout", drainTime.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTime)
	defer cancel()
	srv.Drain(drainCtx) // logs its own outcome, including the hard-cancel
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		httpSrv.Close()
	}
	logger.Info("stopped")
	return nil
}
