// Command partitions explores the set-partition lattice behind the
// paper's KT-1 lower bounds: Bell numbers, joins, the communication
// matrices M_n and E_n with their ranks, and uniform sampling.
//
// Usage:
//
//	partitions -bell 20
//	partitions -join "0,1|2,3|4" -with "0,1,3|2|4"
//	partitions -rank 5            (rank of M_n and E_n when n is even)
//	partitions -sample 10 -count 3 -seed 7
//	partitions -sample 10 -count 3 -format json
//
// Like the other binaries, -format json emits machine-readable output.
// Sampling follows the engine's per-seed derivation convention
// (parallel.DeriveSeed): sample i draws from its own derived stream, so
// sample i is a function of (seed, i) alone — stable under reordering,
// batching, or parallel regeneration, exactly like an engine sweep cell.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"bcclique/internal/comm"
	"bcclique/internal/parallel"
	"bcclique/internal/partition"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "partitions:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bell   = flag.Int("bell", 0, "print B_0..B_n")
		joinA  = flag.String("join", "", "partition in block notation, e.g. \"0,1|2,3|4\"")
		joinB  = flag.String("with", "", "second partition for -join")
		rank   = flag.Int("rank", 0, "compute rank(M_n) (and rank(E_n) for even n)")
		sample = flag.Int("sample", 0, "sample uniform partitions of [n]")
		count  = flag.Int("count", 5, "number of samples for -sample")
		seed   = flag.Int64("seed", 1, "sampling seed (sample i uses the derived seed DeriveSeed(seed, i))")
		format = flag.String("format", "text", "output format: text or json")
	)
	flag.Parse()

	switch *format {
	case "text", "json":
	default:
		return fmt.Errorf("unknown -format %q (want text or json)", *format)
	}
	asJSON := *format == "json"

	switch {
	case *bell > 0:
		return printBell(*bell, asJSON)
	case *joinA != "":
		return printJoin(*joinA, *joinB, asJSON)
	case *rank > 0:
		return printRank(*rank, asJSON)
	case *sample > 0:
		return printSamples(*sample, *count, *seed, asJSON)
	default:
		flag.Usage()
		return nil
	}
}

// emitJSON writes one pretty-printed JSON document, the shared sink of
// every -format json subcommand.
func emitJSON(v interface{}) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func printBell(n int, asJSON bool) error {
	bells := partition.BellsUpTo(n)
	if asJSON {
		type row struct {
			N    int     `json:"n"`
			Bell string  `json:"bell"`
			Log2 float64 `json:"log2"`
		}
		out := make([]row, len(bells))
		for i, b := range bells {
			out[i] = row{N: i, Bell: b.String(), Log2: partition.Log2Big(b)}
		}
		return emitJSON(out)
	}
	for i, b := range bells {
		fmt.Printf("B_%-3d = %v  (log₂ = %.2f)\n", i, b, partition.Log2Big(b))
	}
	return nil
}

// parsePartition reads block notation: blocks separated by '|', elements
// by ','.
func parsePartition(s string) (partition.Partition, int, error) {
	var blocks [][]int
	top := -1
	for _, blockStr := range strings.Split(s, "|") {
		var block []int
		for _, el := range strings.Split(blockStr, ",") {
			el = strings.TrimSpace(el)
			if el == "" {
				continue
			}
			x, err := strconv.Atoi(el)
			if err != nil {
				return partition.Partition{}, 0, fmt.Errorf("element %q: %w", el, err)
			}
			block = append(block, x)
			if x > top {
				top = x
			}
		}
		if len(block) > 0 {
			blocks = append(blocks, block)
		}
	}
	p, err := partition.FromBlocks(top+1, blocks)
	return p, top + 1, err
}

func printJoin(a, b string, asJSON bool) error {
	if b == "" {
		return fmt.Errorf("-join requires -with")
	}
	pa, _, err := parsePartition(a)
	if err != nil {
		return fmt.Errorf("parsing -join: %w", err)
	}
	pb, _, err := parsePartition(b)
	if err != nil {
		return fmt.Errorf("parsing -with: %w", err)
	}
	join, err := pa.Join(pb)
	if err != nil {
		return err
	}
	meet, err := pa.Meet(pb)
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(struct {
			A           string  `json:"a"`
			B           string  `json:"b"`
			Join        string  `json:"join"`
			JoinBlocks  [][]int `json:"join_blocks"`
			JoinTrivial bool    `json:"join_trivial"`
			Meet        string  `json:"meet"`
			MeetBlocks  [][]int `json:"meet_blocks"`
		}{pa.String(), pb.String(), join.String(), join.Blocks(), join.IsTrivial(), meet.String(), meet.Blocks()})
	}
	fmt.Printf("P_A       = %v\n", pa)
	fmt.Printf("P_B       = %v\n", pb)
	fmt.Printf("P_A ∨ P_B = %v (trivial: %v)\n", join, join.IsTrivial())
	fmt.Printf("P_A ∧ P_B = %v\n", meet)
	return nil
}

func printRank(n int, asJSON bool) error {
	type matrixRow struct {
		Matrix   string `json:"matrix"`
		Rows     int    `json:"rows"`
		Cols     int    `json:"cols"`
		Rank     int    `json:"rank"`
		Expected string `json:"expected"`
		Verified bool   `json:"verified"`
		Paper    string `json:"paper"`
	}
	var rows []matrixRow
	m, err := comm.MatrixM(n)
	if err != nil {
		return err
	}
	bn := partition.Bell(n)
	rows = append(rows, matrixRow{
		Matrix: fmt.Sprintf("M_%d", n), Rows: m.Rows(), Cols: m.Cols(), Rank: m.Rank(),
		Expected: bn.String(), Verified: int64(m.Rank()) == bn.Int64(), Paper: "Theorem 2.3",
	})
	if n%2 == 0 {
		e, err := comm.MatrixE(n)
		if err != nil {
			return err
		}
		r := partition.NumPairings(n)
		rows = append(rows, matrixRow{
			Matrix: fmt.Sprintf("E_%d", n), Rows: e.Rows(), Cols: e.Cols(), Rank: e.Rank(),
			Expected: r.String(), Verified: int64(e.Rank()) == r.Int64(), Paper: "Lemma 4.1",
		})
	}
	if asJSON {
		return emitJSON(rows)
	}
	for _, row := range rows {
		expectedName := "B_n"
		if strings.HasPrefix(row.Matrix, "E") {
			expectedName = "(n−1)!!"
		}
		fmt.Printf("%s: %d×%d, rank %d (%s = %v) — %s %s\n",
			row.Matrix, row.Rows, row.Cols, row.Rank, expectedName, row.Expected, row.Paper, verdict(row.Verified))
	}
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "verified"
	}
	return "VIOLATED"
}

func printSamples(n, count int, seed int64, asJSON bool) error {
	if count < 0 {
		return fmt.Errorf("-count %d is negative", count)
	}
	type sampleRow struct {
		Index       int     `json:"index"`
		DerivedSeed int64   `json:"derived_seed"`
		Partition   string  `json:"partition"`
		Blocks      [][]int `json:"blocks"`
		NumBlocks   int     `json:"num_blocks"`
	}
	rows := make([]sampleRow, count)
	for i := 0; i < count; i++ {
		// Engine convention (internal/parallel): each sample draws from
		// its own seed derived from (base, index), never from a shared
		// stream whose state depends on how many samples ran before.
		derived := parallel.DeriveSeed(seed, i)
		rng := rand.New(rand.NewSource(derived))
		p := partition.Random(n, rng)
		rows[i] = sampleRow{Index: i, DerivedSeed: derived, Partition: p.String(), Blocks: p.Blocks(), NumBlocks: p.NumBlocks()}
	}
	if asJSON {
		return emitJSON(rows)
	}
	for _, row := range rows {
		fmt.Printf("%s  (%d blocks)\n", row.Partition, row.NumBlocks)
	}
	return nil
}
