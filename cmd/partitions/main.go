// Command partitions explores the set-partition lattice behind the
// paper's KT-1 lower bounds: Bell numbers, joins, the communication
// matrices M_n and E_n with their ranks, and uniform sampling.
//
// Usage:
//
//	partitions -bell 20
//	partitions -join "0,1|2,3|4" -with "0,1,3|2|4"
//	partitions -rank 5            (rank of M_n and E_n when n is even)
//	partitions -sample 10 -count 3 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"bcclique/internal/comm"
	"bcclique/internal/partition"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "partitions:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bell   = flag.Int("bell", 0, "print B_0..B_n")
		joinA  = flag.String("join", "", "partition in block notation, e.g. \"0,1|2,3|4\"")
		joinB  = flag.String("with", "", "second partition for -join")
		rank   = flag.Int("rank", 0, "compute rank(M_n) (and rank(E_n) for even n)")
		sample = flag.Int("sample", 0, "sample uniform partitions of [n]")
		count  = flag.Int("count", 5, "number of samples for -sample")
		seed   = flag.Int64("seed", 1, "sampling seed")
	)
	flag.Parse()

	switch {
	case *bell > 0:
		return printBell(*bell)
	case *joinA != "":
		return printJoin(*joinA, *joinB)
	case *rank > 0:
		return printRank(*rank)
	case *sample > 0:
		return printSamples(*sample, *count, *seed)
	default:
		flag.Usage()
		return nil
	}
}

func printBell(n int) error {
	bells := partition.BellsUpTo(n)
	for i, b := range bells {
		fmt.Printf("B_%-3d = %v  (log₂ = %.2f)\n", i, b, partition.Log2Big(b))
	}
	return nil
}

// parsePartition reads block notation: blocks separated by '|', elements
// by ','.
func parsePartition(s string) (partition.Partition, int, error) {
	var blocks [][]int
	max := -1
	for _, blockStr := range strings.Split(s, "|") {
		var block []int
		for _, el := range strings.Split(blockStr, ",") {
			el = strings.TrimSpace(el)
			if el == "" {
				continue
			}
			x, err := strconv.Atoi(el)
			if err != nil {
				return partition.Partition{}, 0, fmt.Errorf("element %q: %w", el, err)
			}
			block = append(block, x)
			if x > max {
				max = x
			}
		}
		if len(block) > 0 {
			blocks = append(blocks, block)
		}
	}
	p, err := partition.FromBlocks(max+1, blocks)
	return p, max + 1, err
}

func printJoin(a, b string) error {
	if b == "" {
		return fmt.Errorf("-join requires -with")
	}
	pa, _, err := parsePartition(a)
	if err != nil {
		return fmt.Errorf("parsing -join: %w", err)
	}
	pb, _, err := parsePartition(b)
	if err != nil {
		return fmt.Errorf("parsing -with: %w", err)
	}
	join, err := pa.Join(pb)
	if err != nil {
		return err
	}
	meet, err := pa.Meet(pb)
	if err != nil {
		return err
	}
	fmt.Printf("P_A       = %v\n", pa)
	fmt.Printf("P_B       = %v\n", pb)
	fmt.Printf("P_A ∨ P_B = %v (trivial: %v)\n", join, join.IsTrivial())
	fmt.Printf("P_A ∧ P_B = %v\n", meet)
	return nil
}

func printRank(n int) error {
	m, err := comm.MatrixM(n)
	if err != nil {
		return err
	}
	bn := partition.Bell(n)
	fmt.Printf("M_%d: %d×%d, rank %d (B_n = %v) — Theorem 2.3 %s\n",
		n, m.Rows(), m.Cols(), m.Rank(), bn, verdict(int64(m.Rank()) == bn.Int64()))
	if n%2 == 0 {
		e, err := comm.MatrixE(n)
		if err != nil {
			return err
		}
		r := partition.NumPairings(n)
		fmt.Printf("E_%d: %d×%d, rank %d ((n−1)!! = %v) — Lemma 4.1 %s\n",
			n, e.Rows(), e.Cols(), e.Rank(), r, verdict(int64(e.Rank()) == r.Int64()))
	}
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "verified"
	}
	return "VIOLATED"
}

func printSamples(n, count int, seed int64) error {
	rng := newRng(seed)
	for i := 0; i < count; i++ {
		p := partition.Random(n, rng)
		fmt.Printf("%v  (%d blocks)\n", p, p.NumBlocks())
	}
	return nil
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
