// Command experiments regenerates every experiment table of the
// reproduction (E01–E18; see DESIGN.md §3 for the per-experiment index).
//
// Usage:
//
//	experiments [-quick] [-seed N] [-out FILE] [-only E05,E07] [-parallel N]
//	            [-date D|none] [-format md|json|jsonl] [-cache-dir DIR|none]
//	            [-trace-out FILE]
//	experiments -sweep E17 [-protocols a,b] [-families x,y] [-sizes 8,16]
//	            [-format md|json|jsonl|csv] [-quick] [-seed N] [-out FILE]
//	            [-trace-out FILE]
//
// -trace-out traces the whole run (report or sweep, down to each cell's
// generate/run/bind/rounds/assemble phases) and writes a Chrome
// trace_event file to FILE on exit — load it in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing to see where the wall
// time went. The trace is written even on error or interrupt, covering
// the completed prefix.
//
// With -out it writes the EXPERIMENTS.md-style report to FILE instead of
// stdout. -parallel sets the worker count of the experiment engine
// (0 = all CPUs); every table is bit-identical at any worker count.
//
// -sweep runs one sweep grid (E17/E18) instead of the report, optionally
// restricted to axis subsets — each cell is cached individually, so a
// restricted smoke run shares cache entries with the full grid and a
// re-run with added sizes recomputes only the new cells. csv and jsonl
// stream rows in deterministic cell order.
//
// Reports are byte-reproducible: the header records the full flag set
// needed to regenerate the report, and -date pins the date stamp
// (default today UTC, "none" omits it). Results flow through the shared
// content-addressed cache (see internal/results), so a rerun with an
// unchanged configuration re-renders stored results instead of
// recomputing; -cache-dir none forces a cold computation.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bcclique/internal/engine"
	"bcclique/internal/harness"
	"bcclique/internal/obs"
	"bcclique/internal/parallel"
	"bcclique/internal/report"
	"bcclique/internal/results"
)

func main() {
	// SIGINT/SIGTERM cancel the run via context: running experiments stop
	// at their next simulated round, the completed prefix of the report
	// has already been streamed, and completed work stays cached so a
	// rerun resumes instead of starting over. A second signal kills the
	// process the default way (NotifyContext unregisters after the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		logger := obs.NewLogger(os.Stderr, "experiments")
		if errors.Is(err, context.Canceled) {
			logger.Warn("interrupted — output written so far is a partial report; completed results remain cached, rerun to resume")
			os.Exit(130)
		}
		logger.Error("run failed", "error", err.Error())
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		quick    = flag.Bool("quick", false, "trim instance sizes for a fast pass")
		seed     = flag.Int64("seed", 1, "seed for randomized workloads")
		out      = flag.String("out", "", "write the report to this file instead of stdout")
		only     = flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
		par      = flag.Int("parallel", 0, "worker count for the experiment engine (0 = all CPUs, 1 = sequential)")
		date     = flag.String("date", "", "date stamp for the report header (YYYY-MM-DD; default today UTC, \"none\" omits it)")
		format   = flag.String("format", "md", "report format: md, json, or jsonl (plus csv with -sweep)")
		cacheDir = flag.String("cache-dir", "", "result cache directory (default: <user cache dir>/bcclique, \"none\" disables caching)")
		sweep    = flag.String("sweep", "", "run this sweep grid (E17, E18) instead of the report")
		protos   = flag.String("protocols", "", "comma-separated protocol subset for -sweep (default: all of the grid's)")
		fams     = flag.String("families", "", "comma-separated family subset for -sweep (default: all of the grid's)")
		sizes    = flag.String("sizes", "", "comma-separated size override for -sweep (default: the grid's sizes)")
		traceOut = flag.String("trace-out", "", "trace the run and write a Chrome trace_event file here (Perfetto/about:tracing)")
	)
	flag.Parse()
	parallel.SetLimit(*par)

	resolvedDate := *date
	if resolvedDate == "" {
		resolvedDate = time.Now().UTC().Format("2006-01-02")
	}

	store, err := results.OpenFlag(*cacheDir)
	if err != nil {
		return err
	}
	var opts []engine.Option
	if store != nil {
		opts = append(opts, engine.WithStore(store))
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		// A full E17+E18 run records a few thousand spans (~18 per cell);
		// 32768 keeps even a traced full report un-evicted.
		tracer = obs.New(1 << 15)
		opts = append(opts, engine.WithTracer(tracer))
	}
	eng := harness.NewEngine(opts...)
	if tracer != nil {
		rctx, root := tracer.Root(ctx, "experiments", "experiments")
		ctx = rctx
		// Written on every exit path — an interrupted or failed run still
		// leaves a trace of the prefix that did execute.
		logger := obs.NewLogger(os.Stderr, "experiments")
		defer func() {
			root.End()
			if err := writeChromeTrace(*traceOut, tracer); err != nil {
				logger.Error("writing -trace-out failed", "path", *traceOut, "error", err.Error())
				return
			}
			logger.Info("trace written", "path", *traceOut, "traces", len(tracer.Traces()))
		}()
	}

	// Every flag is validated before -out is opened: os.Create truncates,
	// so a typo'd invocation must never destroy an existing report.
	openOut := func() (io.Writer, func(), error) {
		if *out == "" {
			return os.Stdout, func() {}, nil
		}
		f, err := os.Create(*out)
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	}

	if *sweep != "" {
		// Reject explicitly-set report-only flags instead of silently
		// ignoring them — symmetric with the sweep-only guard below.
		var bad []string
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "only" || f.Name == "date" {
				bad = append(bad, "-"+f.Name)
			}
		})
		if len(bad) > 0 {
			return fmt.Errorf("%s applies to the report, not -sweep (restrict a grid with -protocols/-families/-sizes)",
				strings.Join(bad, ", "))
		}
		grid, err := resolveSweep(eng, *sweep, *protos, *fams, *sizes)
		if err != nil {
			return err
		}
		switch *format {
		case "md", "json", "jsonl", "csv":
		default:
			return fmt.Errorf("unknown -format %q for -sweep (want md, json, jsonl, or csv)", *format)
		}
		w, closeOut, err := openOut()
		if err != nil {
			return err
		}
		defer closeOut()
		return renderSweep(ctx, w, eng, grid, *format, harness.Config{Quick: *quick, Seed: *seed})
	}
	for _, f := range []struct{ name, val string }{{"protocols", *protos}, {"families", *fams}, {"sizes", *sizes}} {
		if f.val != "" {
			return fmt.Errorf("-%s needs -sweep", f.name)
		}
	}

	var renderer report.Renderer
	switch *format {
	case "md":
		renderer = report.Markdown{Trailer: true}
	case "json":
		renderer = report.JSON{}
	case "jsonl":
		renderer = report.JSONL{}
	default:
		return fmt.Errorf("unknown -format %q (want md, json, or jsonl)", *format)
	}

	w, closeOut, err := openOut()
	if err != nil {
		return err
	}
	defer closeOut()

	meta := report.Meta{
		Title: "Experiments: paper vs. measured",
		Intro: fmt.Sprintf("Reproduction of Pai & Pemmaraju, *Connectivity Lower Bounds in Broadcast\n"+
			"Congested Clique* (PODC 2019). One experiment per theorem/lemma/figure;\n"+
			"regenerate with `go run ./cmd/experiments%s`%s.",
			flagSummary(*quick, *only, *seed, resolvedDate), dateSuffix(resolvedDate)),
	}

	var ids []string
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	cfg := harness.Config{Quick: *quick, Seed: *seed}
	_, err = eng.Stream(ctx, w, renderer, meta, cfg, ids, nil)
	return err
}

// writeChromeTrace exports everything the tracer retained as one
// Chrome trace_event file.
func writeChromeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeAll(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// resolveSweep looks up a sweep grid and applies the axis restrictions,
// validating every name and size up front.
func resolveSweep(eng *engine.Engine, id, protos, fams, sizes string) (engine.GridSpec, error) {
	grid, ok := eng.LookupGrid(id)
	if !ok {
		var have []string
		for _, g := range eng.Grids() {
			have = append(have, g.ID)
		}
		return engine.GridSpec{}, fmt.Errorf("unknown sweep grid %q (have: %s)", id, strings.Join(have, ", "))
	}
	var sizeOverride []int
	if sizes != "" {
		for _, s := range strings.Split(sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return engine.GridSpec{}, fmt.Errorf("bad -sizes entry %q: %w", s, err)
			}
			sizeOverride = append(sizeOverride, n)
		}
	}
	return grid.Restrict(splitList(protos), splitList(fams), sizeOverride)
}

// renderSweep runs a resolved sweep grid and renders it as md, json,
// jsonl, or csv (csv/jsonl stream rows in deterministic cell order as
// their prefixes complete).
func renderSweep(ctx context.Context, w io.Writer, eng *engine.Engine, grid engine.GridSpec, format string, cfg harness.Config) error {
	switch format {
	case "md":
		res, err := eng.RunGrid(ctx, grid, cfg, nil, nil)
		if err != nil {
			return err
		}
		return res.WriteMarkdown(w)
	case "json":
		res, err := eng.RunGrid(ctx, grid, cfg, nil, nil)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		return enc.Encode(res)
	case "jsonl":
		_, err := eng.RunGrid(ctx, grid, cfg, nil, grid.JSONLSink(w))
		return err
	case "csv":
		sink, flush, err := grid.CSVSink(w)
		if err != nil {
			return err
		}
		if _, err := eng.RunGrid(ctx, grid, cfg, nil, sink); err != nil {
			return err
		}
		return flush()
	default:
		return fmt.Errorf("unknown -format %q for -sweep (want md, json, jsonl, or csv)", format)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// flagSummary renders the exact flag set that regenerates this report.
// -parallel is recorded only when it was set explicitly: every table is
// bit-identical at any worker count, so it never affects the content and
// recording a machine-dependent default would break reproducibility of
// the header itself.
func flagSummary(quick bool, only string, seed int64, date string) string {
	var parts []string
	if quick {
		parts = append(parts, "-quick")
	}
	parts = append(parts, fmt.Sprintf("-seed %d", seed))
	if only != "" {
		parts = append(parts, "-only "+only)
	}
	parts = append(parts, "-date "+date)
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			parts = append(parts, "-parallel "+f.Value.String())
		}
	})
	return " " + strings.Join(parts, " ")
}

// dateSuffix renders the header's date stamp (omitted with -date none).
func dateSuffix(date string) string {
	if date == "none" {
		return ""
	}
	return fmt.Sprintf(" (%s)", date)
}
