// Command experiments regenerates every experiment table of the
// reproduction (E01–E16; see DESIGN.md §3 for the per-experiment index).
//
// Usage:
//
//	experiments [-quick] [-seed N] [-out FILE] [-only E05,E07] [-parallel N]
//	            [-date D|none] [-format md|json|jsonl] [-cache-dir DIR|none]
//
// With -out it writes the EXPERIMENTS.md-style report to FILE instead of
// stdout. -parallel sets the worker count of the experiment engine
// (0 = all CPUs); every table is bit-identical at any worker count.
//
// Reports are byte-reproducible: the header records the full flag set
// needed to regenerate the report, and -date pins the date stamp
// (default today UTC, "none" omits it). Results flow through the shared
// content-addressed cache (see internal/results), so a rerun with an
// unchanged configuration re-renders stored results instead of
// recomputing; -cache-dir none forces a cold computation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"bcclique/internal/engine"
	"bcclique/internal/harness"
	"bcclique/internal/parallel"
	"bcclique/internal/report"
	"bcclique/internal/results"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick    = flag.Bool("quick", false, "trim instance sizes for a fast pass")
		seed     = flag.Int64("seed", 1, "seed for randomized workloads")
		out      = flag.String("out", "", "write the report to this file instead of stdout")
		only     = flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
		par      = flag.Int("parallel", 0, "worker count for the experiment engine (0 = all CPUs, 1 = sequential)")
		date     = flag.String("date", "", "date stamp for the report header (YYYY-MM-DD; default today UTC, \"none\" omits it)")
		format   = flag.String("format", "md", "report format: md, json, or jsonl")
		cacheDir = flag.String("cache-dir", "", "result cache directory (default: <user cache dir>/bcclique, \"none\" disables caching)")
	)
	flag.Parse()
	parallel.SetLimit(*par)

	resolvedDate := *date
	if resolvedDate == "" {
		resolvedDate = time.Now().UTC().Format("2006-01-02")
	}

	var renderer report.Renderer
	switch *format {
	case "md":
		renderer = report.Markdown{Trailer: true}
	case "json":
		renderer = report.JSON{}
	case "jsonl":
		renderer = report.JSONL{}
	default:
		return fmt.Errorf("unknown -format %q (want md, json, or jsonl)", *format)
	}

	store, err := results.OpenFlag(*cacheDir)
	if err != nil {
		return err
	}
	var opts []engine.Option
	if store != nil {
		opts = append(opts, engine.WithStore(store))
	}
	eng := harness.NewEngine(opts...)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	meta := report.Meta{
		Title: "Experiments: paper vs. measured",
		Intro: fmt.Sprintf("Reproduction of Pai & Pemmaraju, *Connectivity Lower Bounds in Broadcast\n"+
			"Congested Clique* (PODC 2019). One experiment per theorem/lemma/figure;\n"+
			"regenerate with `go run ./cmd/experiments%s`%s.",
			flagSummary(*quick, *only, *seed, resolvedDate), dateSuffix(resolvedDate)),
	}

	var ids []string
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	cfg := harness.Config{Quick: *quick, Seed: *seed}
	_, err = eng.Stream(w, renderer, meta, cfg, ids, nil)
	return err
}

// flagSummary renders the exact flag set that regenerates this report.
// -parallel is recorded only when it was set explicitly: every table is
// bit-identical at any worker count, so it never affects the content and
// recording a machine-dependent default would break reproducibility of
// the header itself.
func flagSummary(quick bool, only string, seed int64, date string) string {
	var parts []string
	if quick {
		parts = append(parts, "-quick")
	}
	parts = append(parts, fmt.Sprintf("-seed %d", seed))
	if only != "" {
		parts = append(parts, "-only "+only)
	}
	parts = append(parts, "-date "+date)
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			parts = append(parts, "-parallel "+f.Value.String())
		}
	})
	return " " + strings.Join(parts, " ")
}

// dateSuffix renders the header's date stamp (omitted with -date none).
func dateSuffix(date string) string {
	if date == "none" {
		return ""
	}
	return fmt.Sprintf(" (%s)", date)
}
