// Command experiments regenerates every experiment table of the
// reproduction (E01–E14; see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	experiments [-quick] [-seed N] [-out FILE] [-only E05,E07] [-parallel N]
//
// With -out it writes the EXPERIMENTS.md-style report to FILE instead of
// stdout. -parallel sets the worker count of the experiment engine
// (0 = all CPUs); every table is bit-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"bcclique/internal/harness"
	"bcclique/internal/parallel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick = flag.Bool("quick", false, "trim instance sizes for a fast pass")
		seed  = flag.Int64("seed", 1, "seed for randomized workloads")
		out   = flag.String("out", "", "write the report to this file instead of stdout")
		only  = flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
		par   = flag.Int("parallel", 0, "worker count for the experiment engine (0 = all CPUs, 1 = sequential)")
	)
	flag.Parse()
	parallel.SetLimit(*par)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if _, err := fmt.Fprintf(w, "# Experiments: paper vs. measured\n\n"+
		"Reproduction of Pai & Pemmaraju, *Connectivity Lower Bounds in Broadcast\n"+
		"Congested Clique* (PODC 2019). One experiment per theorem/lemma/figure;\n"+
		"regenerate with `go run ./cmd/experiments`%s (seed %d, %s).\n\n",
		flagSummary(*quick, *only), *seed, time.Now().UTC().Format("2006-01-02")); err != nil {
		return err
	}

	var ids []string
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	cfg := harness.Config{Quick: *quick, Seed: *seed}
	results, err := harness.RunAll(w, cfg, ids...)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "---\n\n%d experiments completed.\n", len(results))
	return err
}

func flagSummary(quick bool, only string) string {
	var parts []string
	if quick {
		parts = append(parts, "-quick")
	}
	if only != "" {
		parts = append(parts, "-only "+only)
	}
	if len(parts) == 0 {
		return ""
	}
	return " `" + strings.Join(parts, " ") + "`"
}
