// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON perf baseline, so successive PRs can
// compare ns/op and allocs/op per E-series benchmark.
//
// Usage:
//
//	go test -bench 'BenchmarkE' -benchmem -benchtime 20x -run '^$' . | benchjson -out BENCH_parallel.json
//	go test -bench . -benchmem -run '^$' . | benchjson -match '^Sweep' -out BENCH_sweeps.json
//
// -match keeps only benchmarks whose (Benchmark-prefix-stripped) name
// matches the regexp, so one bench pass can feed several scoped baseline
// files.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted baseline file.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkE01Crossing-8   20   40222 ns/op   24636 B/op   424 allocs/op
//
// (the -8 CPU suffix and the two -benchmem columns are optional).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "", "write JSON here instead of stdout")
	match := flag.String("match", "", "keep only benchmarks whose name matches this regexp (after stripping the Benchmark prefix)")
	flag.Parse()

	var keep *regexp.Regexp
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			return fmt.Errorf("bad -match regexp: %w", err)
		}
		keep = re
	}

	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: strings.TrimPrefix(m[1], "Benchmark")}
		if keep != nil && !keep.MatchString(b.Name) {
			continue
		}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		report.Benchmarks = append(report.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		if keep != nil {
			return fmt.Errorf("no benchmark lines matched -match %q (pipe `go test -bench` output)", *match)
		}
		return fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output)")
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}
