// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON perf baseline, so successive PRs can
// compare ns/op and allocs/op per E-series benchmark.
//
// Usage:
//
//	go test -bench 'BenchmarkE' -benchmem -benchtime 20x -run '^$' . | benchjson -out BENCH_parallel.json
//	go test -bench . -benchmem -run '^$' . | benchjson -match '^Sweep' -out BENCH_sweeps.json
//	benchjson -compare BENCH_scale.json fresh.json -tolerance 25
//
// -match keeps only benchmarks whose (Benchmark-prefix-stripped) name
// matches the regexp, so one bench pass can feed several scoped baseline
// files.
//
// -compare old.json new.json switches to regression mode: the two
// baseline files are matched by benchmark name and the command exits
// non-zero if any shared benchmark regressed in ns/op or allocs/op —
// plus B/op with -bytes, the gate the memory baselines use — by
// more than -tolerance percent. Benchmarks present in only one file are
// reported but never fail the comparison (a new benchmark is not a
// regression). CI runs this against the checked-in baselines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted baseline file.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkE01Crossing-8   20   40222 ns/op   24636 B/op   424 allocs/op
//
// (the -8 CPU suffix and the two -benchmem columns are optional).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "", "write JSON here instead of stdout")
	match := flag.String("match", "", "keep only benchmarks whose name matches this regexp (after stripping the Benchmark prefix)")
	compare := flag.Bool("compare", false, "regression mode: compare two baseline files given as positional args (old.json new.json)")
	tolerance := flag.Float64("tolerance", 25, "allowed regression in percent for -compare (ns/op and allocs/op)")
	allocsOnly := flag.Bool("allocs-only", false, "with -compare, gate only on allocs/op (ns/op is still reported) — for cross-machine comparisons where wall time is not comparable")
	bytesGate := flag.Bool("bytes", false, "with -compare, additionally gate on B/op — machine-independent like allocs/op, the gate for memory-footprint baselines")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two positional files: old.json new.json")
		}
		return runCompare(flag.Arg(0), flag.Arg(1), *tolerance, *allocsOnly, *bytesGate)
	}
	if flag.NArg() != 0 {
		return fmt.Errorf("positional arguments only apply to -compare (got %q)", flag.Args())
	}

	var keep *regexp.Regexp
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			return fmt.Errorf("bad -match regexp: %w", err)
		}
		keep = re
	}

	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: strings.TrimPrefix(m[1], "Benchmark")}
		if keep != nil && !keep.MatchString(b.Name) {
			continue
		}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		report.Benchmarks = append(report.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		if keep != nil {
			return fmt.Errorf("no benchmark lines matched -match %q (pipe `go test -bench` output)", *match)
		}
		return fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output)")
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// loadReport reads one baseline file.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in baseline", path)
	}
	return &r, nil
}

// runCompare diffs two baselines benchmark by benchmark and fails on
// regressions beyond tolerance percent. Improvements and within-
// tolerance drift are reported as OK. ns/op is only comparable between
// runs of the same machine; cross-machine gates (CI against a
// checked-in baseline) pass allocsOnly so the machine-independent
// allocation counts gate and wall time is report-only.
func runCompare(oldPath, newPath string, tolerance float64, allocsOnly, bytesGate bool) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	// A zero baseline is a guarantee (e.g. 0 allocs/op iteration), not a
	// free pass: any growth from it is an infinite-percent regression.
	pct := func(oldV, newV float64) float64 {
		if oldV == 0 {
			if newV == 0 {
				return 0
			}
			return math.Inf(1)
		}
		return (newV - oldV) / oldV * 100
	}
	regressions := 0
	seen := make(map[string]bool, len(newRep.Benchmarks))
	for _, nb := range newRep.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("NEW   %-40s %12.0f ns/op (no baseline)\n", nb.Name, nb.NsPerOp)
			continue
		}
		nsDelta := pct(ob.NsPerOp, nb.NsPerOp)
		allocDelta := pct(float64(ob.AllocsPerOp), float64(nb.AllocsPerOp))
		bytesDelta := pct(float64(ob.BytesPerOp), float64(nb.BytesPerOp))
		status := "OK    "
		if (!allocsOnly && nsDelta > tolerance) || allocDelta > tolerance || (bytesGate && bytesDelta > tolerance) {
			status = "REGR  "
			regressions++
		}
		fmt.Printf("%s%-40s ns/op %12.0f -> %12.0f (%+6.1f%%)  allocs/op %8d -> %8d (%+6.1f%%)  B/op %12d -> %12d (%+6.1f%%)\n",
			status, nb.Name, ob.NsPerOp, nb.NsPerOp, nsDelta, ob.AllocsPerOp, nb.AllocsPerOp, allocDelta, ob.BytesPerOp, nb.BytesPerOp, bytesDelta)
	}
	for _, ob := range oldRep.Benchmarks {
		if !seen[ob.Name] {
			fmt.Printf("GONE  %-40s (in %s only)\n", ob.Name, oldPath)
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%% tolerance", regressions, tolerance)
	}
	fmt.Printf("no regressions beyond %.0f%% tolerance (%d benchmarks compared)\n", tolerance, len(seen))
	return nil
}
