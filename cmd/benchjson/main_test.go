package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBaseline(t *testing.T, dir, name string, benches []Benchmark) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(Report{GoVersion: "gotest", Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareTolerance pins the regression gate: within-tolerance drift
// and improvements pass, a beyond-tolerance ns/op or allocs/op
// regression fails, and benchmarks present in only one baseline never
// fail the comparison.
func TestCompareTolerance(t *testing.T) {
	dir := t.TempDir()
	old := writeBaseline(t, dir, "old.json", []Benchmark{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "B", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "Gone", NsPerOp: 5, AllocsPerOp: 1},
	})

	within := writeBaseline(t, dir, "within.json", []Benchmark{
		{Name: "A", NsPerOp: 1200, AllocsPerOp: 110}, // +20% / +10%
		{Name: "B", NsPerOp: 500, AllocsPerOp: 10},   // improvement
		{Name: "New", NsPerOp: 99999, AllocsPerOp: 9},
	})
	if err := runCompare(old, within, 25, false, false); err != nil {
		t.Errorf("within-tolerance comparison failed: %v", err)
	}

	nsRegressed := writeBaseline(t, dir, "ns.json", []Benchmark{
		{Name: "A", NsPerOp: 1300, AllocsPerOp: 100}, // +30% ns/op
		{Name: "B", NsPerOp: 1000, AllocsPerOp: 100},
	})
	if err := runCompare(old, nsRegressed, 25, false, false); err == nil {
		t.Error("a +30%% ns/op regression passed at 25%% tolerance")
	}

	allocRegressed := writeBaseline(t, dir, "alloc.json", []Benchmark{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 140}, // +40% allocs/op
		{Name: "B", NsPerOp: 1000, AllocsPerOp: 100},
	})
	if err := runCompare(old, allocRegressed, 25, false, false); err == nil {
		t.Error("a +40%% allocs/op regression passed at 25%% tolerance")
	}
	// The same regression passes at a looser tolerance.
	if err := runCompare(old, allocRegressed, 50, false, false); err != nil {
		t.Errorf("a +40%% regression failed at 50%% tolerance: %v", err)
	}
}

// TestCompareRejectsEmptyBaselines pins the input validation: an empty
// or unreadable baseline is an error, not a vacuous pass.
func TestCompareRejectsEmptyBaselines(t *testing.T) {
	dir := t.TempDir()
	ok := writeBaseline(t, dir, "ok.json", []Benchmark{{Name: "A", NsPerOp: 1}})
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCompare(ok, empty, 25, false, false); err == nil {
		t.Error("empty new baseline passed")
	}
	if err := runCompare(empty, ok, 25, false, false); err == nil {
		t.Error("empty old baseline passed")
	}
	if err := runCompare(ok, filepath.Join(dir, "missing.json"), 25, false, false); err == nil {
		t.Error("missing baseline passed")
	}
}

// TestCompareZeroBaseline pins that a zero baseline is a guarantee, not
// a free pass: growth from 0 allocs/op is an (infinite-percent)
// regression at any tolerance.
func TestCompareZeroBaseline(t *testing.T) {
	dir := t.TempDir()
	old := writeBaseline(t, dir, "old.json", []Benchmark{
		{Name: "ZeroAlloc", NsPerOp: 1000, AllocsPerOp: 0},
	})
	broken := writeBaseline(t, dir, "broken.json", []Benchmark{
		{Name: "ZeroAlloc", NsPerOp: 1000, AllocsPerOp: 10000},
	})
	if err := runCompare(old, broken, 1000, false, false); err == nil {
		t.Error("0 -> 10000 allocs/op passed the gate")
	}
	still := writeBaseline(t, dir, "still.json", []Benchmark{
		{Name: "ZeroAlloc", NsPerOp: 1100, AllocsPerOp: 0},
	})
	if err := runCompare(old, still, 25, false, false); err != nil {
		t.Errorf("0 -> 0 allocs/op failed the gate: %v", err)
	}
}

// TestCompareAllocsOnly pins the cross-machine mode: ns/op drift never
// gates, allocs/op regressions still do.
func TestCompareAllocsOnly(t *testing.T) {
	dir := t.TempDir()
	old := writeBaseline(t, dir, "old.json", []Benchmark{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 100},
	})
	slowSameAllocs := writeBaseline(t, dir, "slow.json", []Benchmark{
		{Name: "A", NsPerOp: 9000, AllocsPerOp: 100}, // 9× wall, other machine
	})
	if err := runCompare(old, slowSameAllocs, 25, true, false); err != nil {
		t.Errorf("allocs-only mode gated on ns/op drift: %v", err)
	}
	if err := runCompare(old, slowSameAllocs, 25, false, false); err == nil {
		t.Error("full mode ignored a 9× ns/op regression")
	}
	moreAllocs := writeBaseline(t, dir, "allocs.json", []Benchmark{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 200},
	})
	if err := runCompare(old, moreAllocs, 25, true, false); err == nil {
		t.Error("allocs-only mode passed a 2× allocs/op regression")
	}
}

// TestCompareBytesGate pins the memory-baseline mode: B/op regressions
// gate only under -bytes (they are machine-independent, like allocs/op,
// but only the memory baselines declare a bytes contract).
func TestCompareBytesGate(t *testing.T) {
	dir := t.TempDir()
	old := writeBaseline(t, dir, "old.json", []Benchmark{
		{Name: "M", NsPerOp: 1000, BytesPerOp: 1 << 20, AllocsPerOp: 100},
	})
	moreBytes := writeBaseline(t, dir, "bytes.json", []Benchmark{
		{Name: "M", NsPerOp: 1000, BytesPerOp: 4 << 20, AllocsPerOp: 100},
	})
	if err := runCompare(old, moreBytes, 25, false, false); err != nil {
		t.Errorf("default mode gated on B/op: %v", err)
	}
	if err := runCompare(old, moreBytes, 25, false, true); err == nil {
		t.Error("-bytes mode passed a 4x B/op regression")
	}
	fewerBytes := writeBaseline(t, dir, "fewer.json", []Benchmark{
		{Name: "M", NsPerOp: 1000, BytesPerOp: 1 << 18, AllocsPerOp: 100},
	})
	if err := runCompare(old, fewerBytes, 25, false, true); err != nil {
		t.Errorf("-bytes mode gated on a B/op improvement: %v", err)
	}
}
