package main

import (
	"math/rand"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("report=4,sweep=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].kind != "report" || mix[0].weight != 4 || mix[1].kind != "sweep" {
		t.Fatalf("mix = %+v", mix)
	}
	if _, err := parseMix("report=0,sweep=0"); err == nil {
		t.Fatal("all-zero mix accepted")
	}
	if _, err := parseMix("jobs=1"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := parseMix("report"); err == nil {
		t.Fatal("weightless entry accepted")
	}
}

func TestPickRespectsWeights(t *testing.T) {
	mix := []mixEntry{{kind: "report", weight: 4}, {kind: "sweep", weight: 1}}
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[pick(mix, rng)]++
	}
	frac := float64(counts["report"]) / n
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("report fraction %.3f, want ~0.8", frac)
	}
}

func TestNoteSampleKeepsSlowestTrace(t *testing.T) {
	rep := &loadReport{}
	noteSample(rep, "http://bccd", shot{traceID: "req-1-report", code: 200, latency: 40 * time.Millisecond})
	noteSample(rep, "http://bccd", shot{traceID: "req-3-report", code: 200, latency: 250 * time.Millisecond})
	noteSample(rep, "http://bccd", shot{traceID: "req-5-report", code: 200, latency: 90 * time.Millisecond})
	// Unsampled and failed shots must not count.
	noteSample(rep, "http://bccd", shot{code: 200, latency: time.Second})
	noteSample(rep, "http://bccd", shot{traceID: "req-7-report", code: 429, latency: time.Second})
	if rep.TraceSampled != 3 {
		t.Errorf("TraceSampled = %d, want 3", rep.TraceSampled)
	}
	if rep.SlowestTrace != "http://bccd/v1/traces/req-3-report" {
		t.Errorf("SlowestTrace = %q", rep.SlowestTrace)
	}
	if rep.SlowestTraceMs != 250 {
		t.Errorf("SlowestTraceMs = %v, want 250", rep.SlowestTraceMs)
	}
}

// TestClassifyCacheStates pins the X-Cache-State accounting: hit,
// miss, and bypass counted per kind and in total, bypass rate over the
// classified set, non-2xx and headerless shots excluded.
func TestClassifyCacheStates(t *testing.T) {
	rep := &loadReport{Kinds: map[string]*kindStats{
		"report": {Codes: map[string]int{}},
		"sweep":  {Codes: map[string]int{}},
	}}
	for _, s := range []shot{
		{kind: "report", code: 200, cacheState: "hit"},
		{kind: "report", code: 200, cacheState: "miss"},
		{kind: "report", code: 200, cacheState: "bypass"},
		{kind: "sweep", code: 200, cacheState: "bypass"},
		{kind: "sweep", code: 429, cacheState: "hit"}, // non-2xx: unclassified
		{kind: "sweep", code: 200},                    // pre-header server: unclassified
	} {
		classify(rep, s)
	}
	if rep.CacheHits != 1 || rep.CacheMisses != 1 || rep.CacheBypass != 2 {
		t.Errorf("totals hit/miss/bypass = %d/%d/%d, want 1/1/2",
			rep.CacheHits, rep.CacheMisses, rep.CacheBypass)
	}
	if ks := rep.Kinds["report"]; ks.CacheHits != 1 || ks.CacheMisses != 1 || ks.CacheBypass != 1 {
		t.Errorf("report kind hit/miss/bypass = %d/%d/%d, want 1/1/1",
			ks.CacheHits, ks.CacheMisses, ks.CacheBypass)
	}
	if ks := rep.Kinds["sweep"]; ks.CacheBypass != 1 || ks.CacheHits != 0 {
		t.Errorf("sweep kind = %+v, want exactly one bypass", ks)
	}
	if classified := rep.CacheHits + rep.CacheMisses + rep.CacheBypass; classified != 4 {
		t.Errorf("classified = %d, want 4", classified)
	}
}

func TestPercentile(t *testing.T) {
	durs := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} // already sorted
	if got := percentile(durs, 50); got != 5 {
		t.Fatalf("p50 = %d, want 5", got)
	}
	if got := percentile(durs, 99); got != 10 {
		t.Fatalf("p99 = %d, want 10", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("empty p50 = %d, want 0", got)
	}
}
