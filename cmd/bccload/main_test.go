package main

import (
	"math/rand"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("report=4,sweep=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].kind != "report" || mix[0].weight != 4 || mix[1].kind != "sweep" {
		t.Fatalf("mix = %+v", mix)
	}
	if _, err := parseMix("report=0,sweep=0"); err == nil {
		t.Fatal("all-zero mix accepted")
	}
	if _, err := parseMix("jobs=1"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := parseMix("report"); err == nil {
		t.Fatal("weightless entry accepted")
	}
}

func TestPickRespectsWeights(t *testing.T) {
	mix := []mixEntry{{kind: "report", weight: 4}, {kind: "sweep", weight: 1}}
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[pick(mix, rng)]++
	}
	frac := float64(counts["report"]) / n
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("report fraction %.3f, want ~0.8", frac)
	}
}

func TestNoteSampleKeepsSlowestTrace(t *testing.T) {
	rep := &loadReport{}
	noteSample(rep, "http://bccd", shot{traceID: "req-1-report", code: 200, latency: 40 * time.Millisecond})
	noteSample(rep, "http://bccd", shot{traceID: "req-3-report", code: 200, latency: 250 * time.Millisecond})
	noteSample(rep, "http://bccd", shot{traceID: "req-5-report", code: 200, latency: 90 * time.Millisecond})
	// Unsampled and failed shots must not count.
	noteSample(rep, "http://bccd", shot{code: 200, latency: time.Second})
	noteSample(rep, "http://bccd", shot{traceID: "req-7-report", code: 429, latency: time.Second})
	if rep.TraceSampled != 3 {
		t.Errorf("TraceSampled = %d, want 3", rep.TraceSampled)
	}
	if rep.SlowestTrace != "http://bccd/v1/traces/req-3-report" {
		t.Errorf("SlowestTrace = %q", rep.SlowestTrace)
	}
	if rep.SlowestTraceMs != 250 {
		t.Errorf("SlowestTraceMs = %v, want 250", rep.SlowestTraceMs)
	}
}

func TestPercentile(t *testing.T) {
	durs := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} // already sorted
	if got := percentile(durs, 50); got != 5 {
		t.Fatalf("p50 = %d, want 5", got)
	}
	if got := percentile(durs, 99); got != 10 {
		t.Fatalf("p99 = %d, want 10", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("empty p50 = %d, want 0", got)
	}
}
