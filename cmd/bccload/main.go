// Command bccload is an open-loop load generator for bccd: it fires
// requests at a fixed target rate regardless of how fast the server
// answers (so overload shows up honestly as rising latency and 429s,
// never as silently reduced offered load), then reports latency
// percentiles and an error-class breakdown.
//
// Usage:
//
//	bccload [-url http://localhost:8371] [-rps 20] [-duration 10s]
//	        [-mix report=4,sweep=1] [-only E13] [-grid E17] [-quick]
//	        [-seed 1] [-timeout 30s] [-format text|json] [-trace-sample N]
//	        [-capture FILE]
//
// -mix weights the request types: "report" hits GET /v1/report and
// "sweep" hits GET /v1/sweeps?grid=... . Each launched request is
// sampled from the weights with the deterministic -seed, so two runs
// against equally warm servers issue the identical request sequence.
//
// -trace-sample N records the server-side trace ID (the X-Trace-Id
// response header) of every Nth launched request; the report then names
// the slowest sampled request's /v1/traces URL, so "p99 looks bad" goes
// straight to a span tree showing where that request spent its time.
// Requires bccd running with tracing on (the default).
//
// The report classifies successful requests by their X-Cache-State
// response header (hit, miss, or bypass — the last means the server's
// store breaker was open and the result was computed uncached), and
// reports the bypass rate. -capture FILE fetches the sweep grid once
// more after the load loop and writes the raw CSV body to FILE; a
// chaos harness compares captures of a fault-free and a fault-injected
// run byte for byte.
//
// The exit status is 0 when every launched request completed with a
// 2xx, and 1 otherwise — so a smoke invocation doubles as a CI check.
// SIGINT stops the run early and reports what completed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ok, err := run(ctx, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bccload:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

// shot is the outcome of one launched request.
type shot struct {
	kind       string
	code       int           // 0 on transport error
	latency    time.Duration // request start to body fully read
	err        error
	traceID    string // X-Trace-Id of a -trace-sample'd request, else ""
	cacheState string // X-Cache-State response header: hit, miss, or bypass
}

// mixEntry is one weighted request kind.
type mixEntry struct {
	kind   string
	weight float64
}

// parseMix parses "report=4,sweep=1" into normalized weights. Unknown
// kinds are an error; zero or negative weights drop the kind.
func parseMix(s string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, found := strings.Cut(part, "=")
		if !found {
			return nil, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		if name != "report" && name != "sweep" {
			return nil, fmt.Errorf("unknown mix kind %q (want report or sweep)", name)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad mix weight %q", val)
		}
		if w > 0 {
			mix = append(mix, mixEntry{kind: name, weight: w})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("mix %q selects nothing", s)
	}
	return mix, nil
}

// pick samples one kind from the weighted mix.
func pick(mix []mixEntry, rng *rand.Rand) string {
	total := 0.0
	for _, m := range mix {
		total += m.weight
	}
	x := rng.Float64() * total
	for _, m := range mix {
		if x < m.weight {
			return m.kind
		}
		x -= m.weight
	}
	return mix[len(mix)-1].kind
}

// percentile returns the p-th percentile (0–100) of the sorted
// latencies using nearest-rank, 0 on an empty set.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// kindStats is the per-request-kind slice of the report.
type kindStats struct {
	Launched    int             `json:"launched"`
	OK          int             `json:"ok"`
	P50Ms       float64         `json:"p50_ms"`
	P95Ms       float64         `json:"p95_ms"`
	P99Ms       float64         `json:"p99_ms"`
	MaxMs       float64         `json:"max_ms"`
	Codes       map[string]int  `json:"codes"`
	Errors      map[string]int  `json:"errors,omitempty"`
	CacheHits   int             `json:"cache_hits"`
	CacheMisses int             `json:"cache_misses"`
	CacheBypass int             `json:"cache_bypass"`
	durs        []time.Duration `json:"-"`
}

// loadReport is the final summary, printable as text or JSON.
type loadReport struct {
	TargetRPS   float64               `json:"target_rps"`
	Duration    string                `json:"duration"`
	Launched    int                   `json:"launched"`
	Completed   int                   `json:"completed"`
	OK          int                   `json:"ok"`
	RateLimited int                   `json:"rate_limited"` // 429s
	ServerBusy  int                   `json:"server_busy"`  // 503s
	Failures    int                   `json:"failures"`     // other non-2xx + transport errors
	AchievedRPS float64               `json:"achieved_rps"`
	Interrupted bool                  `json:"interrupted,omitempty"`
	Kinds       map[string]*kindStats `json:"kinds"`

	// Cache-state breakdown from the X-Cache-State response header on
	// successful requests. BypassRate over all classified requests is the
	// degraded-mode signal a chaos run watches.
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	CacheBypass int     `json:"cache_bypass"`
	BypassRate  float64 `json:"bypass_rate"`

	// Populated by -trace-sample: how many completed requests carried a
	// sampled trace ID, and the slowest of them as a fetchable URL.
	TraceSampled   int     `json:"trace_sampled,omitempty"`
	SlowestTrace   string  `json:"slowest_trace,omitempty"`
	SlowestTraceMs float64 `json:"slowest_trace_ms,omitempty"`
}

func classify(rep *loadReport, s shot) {
	ks := rep.Kinds[s.kind]
	ks.Launched++
	rep.Launched++
	rep.Completed++
	switch {
	case s.err != nil:
		rep.Failures++
		msg := errClass(s.err)
		if ks.Errors == nil {
			ks.Errors = make(map[string]int)
		}
		ks.Errors[msg]++
	case s.code/100 == 2:
		rep.OK++
		ks.OK++
		ks.Codes[strconv.Itoa(s.code)]++
		ks.durs = append(ks.durs, s.latency)
		switch s.cacheState {
		case "hit":
			rep.CacheHits++
			ks.CacheHits++
		case "miss":
			rep.CacheMisses++
			ks.CacheMisses++
		case "bypass":
			rep.CacheBypass++
			ks.CacheBypass++
		}
	default:
		ks.Codes[strconv.Itoa(s.code)]++
		switch s.code {
		case http.StatusTooManyRequests:
			rep.RateLimited++
		case http.StatusServiceUnavailable:
			rep.ServerBusy++
		default:
			rep.Failures++
		}
	}
}

// noteSample folds one -trace-sample'd shot into the report, keeping
// the slowest successfully-traced request as a fetchable URL. Failed
// requests are excluded: their trace (if any) describes an aborted
// computation, not the latency the percentiles measure.
func noteSample(rep *loadReport, baseURL string, s shot) {
	if s.traceID == "" || s.code/100 != 2 {
		return
	}
	rep.TraceSampled++
	if ms := s.latency.Seconds() * 1000; ms > rep.SlowestTraceMs {
		rep.SlowestTraceMs = ms
		rep.SlowestTrace = baseURL + "/v1/traces/" + s.traceID
	}
}

// errClass collapses transport errors into stable buckets so the
// report does not explode into one line per ephemeral port.
func errClass(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	case strings.Contains(err.Error(), "connection refused"):
		return "connection refused"
	default:
		return "transport error"
	}
}

func run(ctx context.Context, out io.Writer) (bool, error) {
	var (
		baseURL  = flag.String("url", "http://localhost:8371", "bccd base URL")
		rps      = flag.Float64("rps", 20, "target requests per second (open loop)")
		duration = flag.Duration("duration", 10*time.Second, "how long to generate load")
		mixFlag  = flag.String("mix", "report=4,sweep=1", "request mix as kind=weight pairs (kinds: report, sweep)")
		only     = flag.String("only", "E13", "spec IDs for report requests (comma list)")
		grid     = flag.String("grid", "E17", "grid ID for sweep requests")
		quick    = flag.Bool("quick", true, "request quick (reduced-size) runs")
		seed     = flag.Int64("seed", 1, "experiment seed and mix-sampling seed")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		format   = flag.String("format", "text", "report format: text or json")
		sampleN  = flag.Int("trace-sample", 0, "record the server trace ID (X-Trace-Id) of every Nth launched request (0 disables)")
		capture  = flag.String("capture", "", "after the load loop, fetch the sweep grid once more and write the CSV body to FILE (chaos byte-identity probe)")
	)
	flag.Parse()
	if *format != "text" && *format != "json" {
		return false, fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	if *rps <= 0 {
		return false, fmt.Errorf("rps must be positive")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return false, err
	}

	urlFor := func(kind string) string {
		q := fmt.Sprintf("quick=%t&seed=%d", *quick, *seed)
		if kind == "sweep" {
			return fmt.Sprintf("%s/v1/sweeps?grid=%s&format=csv&%s", *baseURL, *grid, q)
		}
		return fmt.Sprintf("%s/v1/report?only=%s&format=json&%s", *baseURL, *only, q)
	}

	client := &http.Client{Timeout: *timeout}
	rng := rand.New(rand.NewSource(*seed))
	interval := time.Duration(float64(time.Second) / *rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	endAt := time.NewTimer(*duration)
	defer endAt.Stop()

	shots := make(chan shot, 1024)
	var wg sync.WaitGroup
	start := time.Now()
	interrupted := false

	launchCount := 0 // fire is only called from the launch loop goroutine
	fire := func(kind string) {
		launchCount++
		sampled := *sampleN > 0 && (launchCount-1)%*sampleN == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			s := shot{kind: kind}
			resp, err := client.Get(urlFor(kind))
			if err == nil {
				_, err = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				s.code = resp.StatusCode
				s.cacheState = resp.Header.Get("X-Cache-State")
				if sampled {
					s.traceID = resp.Header.Get("X-Trace-Id")
				}
			}
			s.err = err
			s.latency = time.Since(t0)
			shots <- s
		}()
	}

	fire(pick(mix, rng)) // launch at t=0, then on every tick
loop:
	for {
		select {
		case <-ctx.Done():
			interrupted = true
			break loop
		case <-endAt.C:
			break loop
		case <-ticker.C:
			fire(pick(mix, rng))
		}
	}
	elapsed := time.Since(start)
	go func() { wg.Wait(); close(shots) }()

	rep := &loadReport{
		TargetRPS: *rps,
		Duration:  elapsed.Round(time.Millisecond).String(),
		Kinds:     make(map[string]*kindStats),
	}
	for _, m := range mix {
		rep.Kinds[m.kind] = &kindStats{Codes: make(map[string]int)}
	}
	for s := range shots {
		classify(rep, s)
		noteSample(rep, *baseURL, s)
	}
	rep.Interrupted = interrupted
	if secs := elapsed.Seconds(); secs > 0 {
		rep.AchievedRPS = float64(rep.Completed) / secs
	}
	if classified := rep.CacheHits + rep.CacheMisses + rep.CacheBypass; classified > 0 {
		rep.BypassRate = float64(rep.CacheBypass) / float64(classified)
	}
	for _, ks := range rep.Kinds {
		sort.Slice(ks.durs, func(i, j int) bool { return ks.durs[i] < ks.durs[j] })
		ks.P50Ms = percentile(ks.durs, 50).Seconds() * 1000
		ks.P95Ms = percentile(ks.durs, 95).Seconds() * 1000
		ks.P99Ms = percentile(ks.durs, 99).Seconds() * 1000
		if n := len(ks.durs); n > 0 {
			ks.MaxMs = ks.durs[n-1].Seconds() * 1000
		}
	}

	if *format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return false, err
		}
	} else {
		writeText(out, rep)
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "bccload: interrupted — report covers the requests launched so far")
	}
	if *capture != "" {
		if err := captureSweep(client, urlFor("sweep"), *capture); err != nil {
			return false, err
		}
	}
	return rep.OK == rep.Launched && rep.Launched > 0, nil
}

// captureSweep fetches the sweep grid once more and writes the raw CSV
// body to file. The chaos harness compares the captures of a fault-free
// and a fault-injected run byte for byte: whatever the faults did to
// the store, the rows a client reads must be identical.
func captureSweep(client *http.Client, url, file string) error {
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("capture: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("capture: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("capture: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if err := os.WriteFile(file, body, 0o644); err != nil {
		return fmt.Errorf("capture: %w", err)
	}
	return nil
}

func writeText(w io.Writer, rep *loadReport) {
	fmt.Fprintf(w, "bccload: %.1f rps target over %s — launched %d, ok %d, 429 %d, 503 %d, failed %d (achieved %.1f rps)\n",
		rep.TargetRPS, rep.Duration, rep.Launched, rep.OK, rep.RateLimited, rep.ServerBusy, rep.Failures, rep.AchievedRPS)
	kinds := make([]string, 0, len(rep.Kinds))
	for k := range rep.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		ks := rep.Kinds[k]
		fmt.Fprintf(w, "  %-7s launched %4d  ok %4d  p50 %7.1fms  p95 %7.1fms  p99 %7.1fms  max %7.1fms\n",
			k, ks.Launched, ks.OK, ks.P50Ms, ks.P95Ms, ks.P99Ms, ks.MaxMs)
		codes := make([]string, 0, len(ks.Codes))
		for c := range ks.Codes {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		for _, c := range codes {
			if !strings.HasPrefix(c, "2") {
				fmt.Fprintf(w, "          HTTP %s ×%d\n", c, ks.Codes[c])
			}
		}
		for msg, n := range ks.Errors {
			fmt.Fprintf(w, "          %s ×%d\n", msg, n)
		}
	}
	if classified := rep.CacheHits + rep.CacheMisses + rep.CacheBypass; classified > 0 {
		fmt.Fprintf(w, "  cache: hit %d  miss %d  bypass %d (bypass rate %.1f%%)\n",
			rep.CacheHits, rep.CacheMisses, rep.CacheBypass, rep.BypassRate*100)
	}
	if rep.TraceSampled > 0 {
		fmt.Fprintf(w, "  sampled %d traces; slowest %.1fms: %s\n",
			rep.TraceSampled, rep.SlowestTraceMs, rep.SlowestTrace)
	}
}
