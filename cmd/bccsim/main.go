// Command bccsim runs one BCC(b) algorithm on one generated instance and
// reports the outcome: verdict, component labels, rounds, and broadcast
// bits.
//
// Usage:
//
//	bccsim -model kt1 -graph cycle -n 32 -algo neighborhood
//	bccsim -model kt0 -graph twocycle -n 64 -algo kt0-exchange
//	bccsim -model kt1 -graph random -n 24 -algo boruvka -seed 7
//	bccsim -model kt1 -graph twocycle -n 64 -algo flood -trials 500 -parallel 4
//	bccsim -family er-threshold -n 48 -algo boruvka
//	bccsim -family barbell -protocol sketch-a1 -n 32
//
// -family generates the input from a registered scenario family
// (internal/family; overrides -graph, with the family's invariants
// verified on the generated instance). -protocol runs a registered
// protocol adapter (internal/protocol) instead of -algo: the adapter
// sizes itself for the input, builds its own instance, and reports the
// unified Outcome — per-round cost, verdict, labels, and whether a
// failure was a detectable refusal.
//
// With -trials N the simulator additionally estimates the algorithm's
// Monte Carlo error over N coin seeds (run in parallel on -parallel
// workers; the estimate is bit-identical at any worker count). The
// built-in algorithms are all deterministic — they ignore the public
// coin, so their estimate is exactly 0 or 1; the sweep becomes
// informative for coin-using algorithms wired in here.
//
// The -trials sweep runs as a spec on the shared experiment engine, so
// its estimate lands in the same content-addressed result cache used by
// cmd/experiments and the bccd server: repeating an identical sweep is a
// cache hit, not a recomputation (-cache-dir none forces a recompute).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"

	"bcclique/internal/algorithms"
	"bcclique/internal/bcc"
	"bcclique/internal/engine"
	"bcclique/internal/family"
	"bcclique/internal/graph"
	"bcclique/internal/obs"
	"bcclique/internal/parallel"
	"bcclique/internal/protocol"
	"bcclique/internal/report"
	"bcclique/internal/results"
)

func main() {
	// SIGINT/SIGTERM cancel the simulation via context: the round loop
	// stops at its next boundary, nothing partial is cached, and the exit
	// status reports the interruption. A second signal kills the process
	// the default way (NotifyContext unregisters after the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		logger := obs.NewLogger(os.Stderr, "bccsim")
		if errors.Is(err, context.Canceled) {
			logger.Warn("interrupted — run abandoned mid-simulation; completed sweep results remain cached")
			os.Exit(130)
		}
		logger.Error("run failed", "error", err.Error())
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		model     = flag.String("model", "kt1", "knowledge variant: kt0 or kt1")
		graphKind = flag.String("graph", "cycle", "input graph: cycle, twocycle, cover, or random")
		famName   = flag.String("family", "", "generate the input from this scenario family (overrides -graph): "+family.Describe())
		n         = flag.Int("n", 16, "number of vertices")
		algoName  = flag.String("algo", "neighborhood", "algorithm: neighborhood, kt0-exchange, boruvka, or flood")
		protoName = flag.String("protocol", "", "run this protocol adapter instead of -algo (sizes itself, builds its own instance): "+strings.Join(protocol.Names(), ", "))
		bandwidth = flag.Int("b", 1, "bandwidth for flood")
		seed      = flag.Int64("seed", 1, "seed for graph generation and wiring")
		verbose   = flag.Bool("v", false, "print per-vertex labels")
		trials    = flag.Int("trials", 0, "estimate Monte Carlo error over this many coin seeds (0 = off; -algo path only)")
		par       = flag.Int("parallel", 0, "worker count for seed sweeps (0 = all CPUs, 1 = sequential)")
		cacheDir  = flag.String("cache-dir", "", "result cache for -trials sweeps (default: <user cache dir>/bcclique, \"none\" disables caching)")
	)
	flag.Parse()
	parallel.SetLimit(*par)

	rng := rand.New(rand.NewSource(*seed))
	inputKind := *graphKind
	var (
		g   *graph.Graph
		err error
	)
	if *famName != "" {
		fam, ok := family.Lookup(*famName)
		if !ok {
			return fmt.Errorf("unknown family %q (have: %s)", *famName, family.Describe())
		}
		inputKind = "family:" + fam.Name()
		g, err = fam.Build(*n, *seed)
	} else {
		g, err = buildGraph(*graphKind, *n, rng)
	}
	if err != nil {
		return err
	}
	if *protoName != "" {
		// The adapter sizes itself and builds its own instance, so
		// explicitly-set -algo-path flags would be silently dropped;
		// reject them instead.
		var bad []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "algo", "b", "model", "trials":
				bad = append(bad, "-"+f.Name)
			}
		})
		if len(bad) > 0 {
			return fmt.Errorf("%s does not apply to -protocol (adapters pick bandwidth, model and instance themselves; -trials needs the -algo path)",
				strings.Join(bad, ", "))
		}
		return runProtocol(ctx, *protoName, g, inputKind, *n, *seed, *verbose)
	}
	in, err := buildInstance(*model, g, rng)
	if err != nil {
		return err
	}
	algo, deterministic, err := buildAlgorithm(*algoName, *n, *bandwidth, g)
	if err != nil {
		return err
	}

	res, err := bcc.RunContext(ctx, in, algo, bcc.WithCoin(bcc.NewCoin(*seed)))
	if err != nil {
		return err
	}

	lengths, twoRegular := g.CycleLengths()
	fmt.Printf("instance : %s, n=%d, %s, %d edges, %d components\n",
		in.Knowledge(), *n, inputKind, g.M(), g.NumComponents())
	if twoRegular {
		fmt.Printf("cycles   : %v\n", lengths)
	}
	fmt.Printf("algorithm: %s (b=%d)\n", algo.Name(), algo.Bandwidth())
	fmt.Printf("path     : %s\n", pathName(res.BitPlane))
	fmt.Printf("rounds   : %d\n", res.Rounds)
	fmt.Printf("bits     : %d broadcast in total\n", res.TotalBits)
	if res.HasVerdict {
		truth := "disconnected"
		if g.IsConnected() {
			truth = "connected"
		}
		fmt.Printf("verdict  : %v (ground truth: %s)\n", res.Verdict, truth)
	}
	if res.Labels != nil {
		distinct := make(map[int]bool)
		for _, l := range res.Labels {
			distinct[l] = true
		}
		fmt.Printf("labels   : %d distinct component labels\n", len(distinct))
		if *verbose {
			for v, l := range res.Labels {
				fmt.Printf("  vertex %3d (id %3d): component %d\n", v, in.ID(v), l)
			}
		}
	}
	if *trials > 0 {
		if !res.HasVerdict {
			fmt.Printf("error    : -trials skipped (%s produces no verdict)\n", algo.Name())
			return nil
		}
		want := bcc.VerdictNo
		if g.IsConnected() {
			want = bcc.VerdictYes
		}
		// inputKind (not *graphKind) is the cache identity: with -family
		// it reads "family:<name>", so a family sweep can never collide
		// with a -graph sweep of the same size and seed.
		sweep, cached, err := runSweep(ctx, in, algo, want, sweepSpec{
			model: *model, graphKind: inputKind, n: *n, algo: *algoName,
			b: *bandwidth, seed: *seed, trials: *trials, cacheDir: *cacheDir,
		})
		if err != nil {
			return err
		}
		note := ""
		if deterministic {
			note = fmt.Sprintf("; note: %s is deterministic, so all seeds agree", algo.Name())
		}
		src := fmt.Sprintf("%d workers", parallel.Limit())
		if cached {
			src = "cached"
		}
		fmt.Printf("error    : %s over %d seeds (%s%s)\n", sweep.Finding, *trials, src, note)
	}
	return nil
}

// runProtocol runs a registered protocol adapter on g and prints its
// unified Outcome.
func runProtocol(ctx context.Context, name string, g *graph.Graph, inputKind string, n int, seed int64, verbose bool) error {
	p, ok := protocol.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown protocol %q (have: %s)", name, strings.Join(protocol.Names(), ", "))
	}
	out, err := p.Run(ctx, g, seed)
	if err != nil {
		return err
	}
	lengths, twoRegular := g.CycleLengths()
	fmt.Printf("instance : n=%d, %s, %d edges, %d components\n",
		n, inputKind, g.M(), g.NumComponents())
	if twoRegular {
		fmt.Printf("cycles   : %v\n", lengths)
	}
	fmt.Printf("protocol : %s (b=%d)\n", out.Protocol, out.Bandwidth)
	fmt.Printf("path     : %s\n", pathName(out.BitPlane))
	fmt.Printf("rounds   : %d\n", out.Rounds)
	fmt.Printf("bits     : %d broadcast in total (%.4g bits/round)\n",
		out.TotalBits, float64(out.TotalBits)/float64(max(1, out.Rounds)))
	s := out.Summary()
	fmt.Printf("per round: min %d / median %d / p95 %d / max %d bits\n",
		s.MinBits, s.MedianBits, s.P95Bits, s.MaxBits)
	if out.HasVerdict {
		truth := "disconnected"
		if g.IsConnected() {
			truth = "connected"
		}
		fmt.Printf("verdict  : %v (ground truth: %s)\n", out.Verdict, truth)
	}
	switch {
	case out.Correct:
		fmt.Println("outcome  : correct (verdict and labels match ground truth)")
	case out.Refused:
		fmt.Println("outcome  : refused detectably (every label is −1; input outside the protocol's promise)")
	default:
		fmt.Println("outcome  : SILENT WRONG ANSWER (model contract violation)")
	}
	if out.Labels != nil {
		distinct := make(map[int]bool)
		for _, l := range out.Labels {
			distinct[l] = true
		}
		fmt.Printf("labels   : %d distinct component labels\n", len(distinct))
		if verbose {
			for v, l := range out.Labels {
				fmt.Printf("  vertex %3d: component %d\n", v, l)
			}
		}
	}
	return nil
}

// sweepSpec is the declarative identity of one Monte Carlo sweep: every
// field that determines the estimate, canonically encoded into the
// engine spec so identical sweeps share one cache entry.
type sweepSpec struct {
	model, graphKind, algo string
	n, b, trials           int
	seed                   int64
	cacheDir               string
}

// runSweep estimates the Monte Carlo error through the shared experiment
// engine, so repeated identical sweeps are served from the result cache.
func runSweep(ctx context.Context, in *bcc.Instance, algo bcc.Algorithm, want bcc.Verdict, ss sweepSpec) (*report.Result, bool, error) {
	spec := engine.Spec{
		ID:       "bccsim",
		Title:    fmt.Sprintf("Monte Carlo error of %s on %s (n=%d)", ss.algo, ss.graphKind, ss.n),
		PaperRef: "Section 1.2 (Monte Carlo error accounting)",
		Params: engine.Params{
			Trials: ss.trials,
			Extra: fmt.Sprintf("model=%s;graph=%s;n=%d;algo=%s;b=%d;want=%v",
				ss.model, ss.graphKind, ss.n, ss.algo, ss.b, want),
		},
		Run: func(ctx context.Context, cfg engine.Config, p engine.Params) (*report.Result, error) {
			seeds := make([]int64, p.Trials)
			for i := range seeds {
				seeds[i] = parallel.DeriveSeed(cfg.Seed, i)
			}
			eps, err := bcc.EstimateErrorContext(ctx, in, algo, want, seeds)
			if err != nil {
				return nil, err
			}
			table := &report.Table{
				Title:   "Monte Carlo error estimate",
				Headers: []string{"seeds", "target verdict", "error"},
			}
			table.AddRow(p.Trials, want, eps)
			return &report.Result{
				Claim:   "The public-coin Monte Carlo error is the fraction of coin seeds on which the algorithm misdecides.",
				Finding: report.FormatFloat(eps),
				Tables:  []*report.Table{table},
			}, nil
		},
	}
	store, err := results.OpenFlag(ss.cacheDir)
	if err != nil {
		return nil, false, err
	}
	var opts []engine.Option
	if store != nil {
		opts = append(opts, engine.WithStore(store))
	}
	eng := engine.New([]engine.Spec{spec}, opts...)
	var hits atomic.Int64
	out, err := eng.Run(ctx, engine.Config{Seed: ss.seed}, nil, func(ev engine.Event) {
		if ev.Kind == engine.EventCached {
			hits.Add(1)
		}
	})
	if err != nil {
		return nil, false, err
	}
	return out[0], hits.Load() > 0, nil
}

// pathName names the simulator path a run took: the word-packed 1-bit
// broadcast plane, or the generic per-message loop.
func pathName(bitPlane bool) string {
	if bitPlane {
		return "bit plane (word-packed 1-bit broadcasts)"
	}
	return "generic (per-message delivery)"
}

func buildGraph(kind string, n int, rng *rand.Rand) (*graph.Graph, error) {
	switch kind {
	case "cycle":
		return graph.RandomOneCycle(n, rng), nil
	case "twocycle":
		if n < 6 {
			return nil, fmt.Errorf("twocycle needs n ≥ 6")
		}
		return graph.RandomTwoCycle(n, n/2, rng)
	case "cover":
		return graph.RandomCycleCover(n, rng), nil
	case "random":
		g := graph.New(n)
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		return g, nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func buildInstance(model string, g *graph.Graph, rng *rand.Rand) (*bcc.Instance, error) {
	ids := bcc.SequentialIDs(g.N())
	switch model {
	case "kt0":
		return bcc.NewKT0(ids, g, bcc.RandomWiring(g.N(), rng))
	case "kt1":
		return bcc.NewKT1(ids, g)
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}

// buildAlgorithm returns the selected algorithm and whether it is
// deterministic (ignores the public coin). Keep the flag in sync when
// wiring in a coin-using algorithm: it qualifies the -trials report.
func buildAlgorithm(name string, n, b int, g *graph.Graph) (algo bcc.Algorithm, deterministic bool, err error) {
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	idBits := 1
	for (1 << uint(idBits)) < n {
		idBits++
	}
	switch name {
	case "neighborhood":
		algo, err = algorithms.NewNeighborhoodBroadcast(maxDeg)
	case "kt0-exchange":
		algo, err = algorithms.NewKT0Exchange(maxDeg, idBits)
	case "boruvka":
		algo, err = algorithms.NewBoruvka(idBits)
	case "flood":
		algo, err = algorithms.NewFlood(b)
	default:
		return nil, false, fmt.Errorf("unknown algorithm %q", name)
	}
	return algo, true, err
}
