// Command bccvet is the repo's multichecker: it loads every package of
// the module (tests included), runs the five repo-specific analyzers,
// and exits non-zero on any finding. The analyzers mechanically enforce
// the invariants the compiler cannot see — the ones the reproduction's
// acceptance bars rest on:
//
//	detpath      bit-identical tables: no global math/rand, no
//	             unannotated wall-clock reads, no map-order-dependent
//	             output in the simulation packages
//	ctxflow      socket-to-round cancellation: thread the in-scope ctx,
//	             never mint Background/TODO under it, ctx-first
//	             signatures
//	pairwise     exactly-once resource pairing: obs spans End, queue
//	             slots release, bcc pool buffers recycle
//	frozenwrite  //bccvet:frozen types are only written at declared
//	             //bccvet:thaws sites
//	shadow       declarations must not take over builtin function
//	             names (the former cmd/lintshadow)
//
// Findings that are deliberate carry an inline escape hatch with a
// mandatory reason:
//
//	start := time.Now() //bccvet:ignore detpath -- elapsed is reported, never keyed on
//
// Usage:
//
//	bccvet [-run regexp] [-list] [moduleroot]
//
// -run selects analyzers by name (e.g. -run detpath for one, -run
// 'detpath|ctxflow' for two); -list prints the analyzers and exits.
// The module root defaults to "." and a trailing /... is accepted (and
// ignored — the whole module is always loaded, scoping is per
// analyzer).
package main

import (
	"fmt"
	"os"
	"regexp"
	"strings"

	"bcclique/internal/analysis"
	"bcclique/internal/analysis/passes/ctxflow"
	"bcclique/internal/analysis/passes/detpath"
	"bcclique/internal/analysis/passes/frozenwrite"
	"bcclique/internal/analysis/passes/pairwise"
	"bcclique/internal/analysis/passes/shadow"
)

// detpathScope lists the package-path prefixes (under the module path)
// on the deterministic simulation path. ISSUE/DESIGN §8 name these; a
// new simulation package joins by being added here.
var detpathScope = []string{
	"internal/bcc", "internal/algorithms", "internal/protocol",
	"internal/family", "internal/graph", "internal/dsu",
	"internal/engine", "internal/harness",
}

// checker binds an analyzer to its package scope.
type checker struct {
	analyzer *analysis.Analyzer
	// tests: run over test units too (only the shadow lint wants
	// that; determinism/ctx/pairing rules exempt test code).
	tests bool
	// scope restricts to packages under these module-relative prefixes
	// (nil = everywhere).
	scope []string
}

var checkers = []checker{
	{analyzer: detpath.Analyzer, scope: detpathScope},
	{analyzer: ctxflow.Analyzer},
	{analyzer: pairwise.Analyzer},
	{analyzer: frozenwrite.Analyzer},
	{analyzer: shadow.Analyzer, tests: true},
}

func main() {
	runFlag := ""
	list := false
	args := os.Args[1:]
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch {
		case args[0] == "-list" || args[0] == "--list":
			list = true
			args = args[1:]
		case args[0] == "-run" || args[0] == "--run":
			if len(args) < 2 {
				fatal("missing argument for -run")
			}
			runFlag = args[1]
			args = args[2:]
		case strings.HasPrefix(args[0], "-run="):
			runFlag = strings.TrimPrefix(args[0], "-run=")
			args = args[1:]
		case args[0] == "-h" || args[0] == "-help" || args[0] == "--help":
			usage(os.Stdout)
			return
		default:
			fatal("unknown flag %s", args[0])
		}
	}
	if list {
		for _, c := range checkers {
			fmt.Printf("%-12s %s\n", c.analyzer.Name, firstLine(c.analyzer.Doc))
		}
		return
	}
	selected := checkers
	if runFlag != "" {
		re, err := regexp.Compile(runFlag)
		if err != nil {
			fatal("bad -run regexp: %v", err)
		}
		selected = nil
		for _, c := range checkers {
			if re.MatchString(c.analyzer.Name) {
				selected = append(selected, c)
			}
		}
		if len(selected) == 0 {
			fatal("-run %q matches no analyzer (have: %s)", runFlag, names())
		}
	}
	root := "."
	if len(args) > 0 {
		root = strings.TrimSuffix(args[0], "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
	}

	loader := analysis.NewLoader()
	pkgs, err := loader.LoadModule(root, true)
	if err != nil {
		fatal("load: %v", err)
	}

	known := map[string]bool{"bccvet": true}
	for _, c := range checkers {
		known[c.analyzer.Name] = true
	}

	bad := 0
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		for _, c := range selected {
			if pkg.Test && !c.tests {
				continue
			}
			if !inScope(pkg.Path, c.scope) {
				continue
			}
			ds, err := analysis.RunPackage(c.analyzer, pkg)
			if err != nil {
				fatal("%v", err)
			}
			diags = append(diags, ds...)
		}
		kept, problems := analysis.Filter(pkg, diags, known)
		kept = append(kept, problems...)
		analysis.SortDiagnostics(pkg.Fset, kept)
		for _, d := range kept {
			fmt.Println(analysis.Format(pkg.Fset, d))
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "bccvet: %d finding(s)\n", bad)
		os.Exit(1)
	}
}

// inScope reports whether a package path (which may carry a test
// suffix) falls under one of the module-relative prefixes.
func inScope(path string, scope []string) bool {
	if scope == nil {
		return true
	}
	path = strings.TrimSuffix(strings.TrimSuffix(path, " [test]"), "_test")
	for _, p := range scope {
		if strings.HasSuffix(path, "/"+p) || strings.Contains(path, "/"+p+"/") {
			return true
		}
	}
	return false
}

func names() string {
	var out []string
	for _, c := range checkers {
		out = append(out, c.analyzer.Name)
	}
	return strings.Join(out, ", ")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func usage(w *os.File) {
	fmt.Fprintf(w, "usage: bccvet [-run regexp] [-list] [moduleroot]\nanalyzers: %s\n", names())
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
