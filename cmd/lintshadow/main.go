// Command lintshadow flags declarations that shadow Go's builtin
// functions (min, max, cap, len, copy, ...). Shadowing one inside a
// scope that also wants the builtin is a whole class of silent bugs —
// `cap := grid.SizeCaps[k]` turning a later `cap(buf)` into a compile
// error at best, a miscomputation after a refactor at worst. staticcheck
// catches some of this, but is an external tool; this check is stdlib-
// only, so `make check` enforces it everywhere the repo builds.
//
// Usage: lintshadow [dir ...] (default "."). Walks every *.go file
// under the given directories, skipping testdata and hidden
// directories. Exits 1 listing offending file:line positions.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// builtinFuncs are the predeclared functions whose names a declaration
// must not take over. Predeclared types (string, int, ...) are left
// alone: shadowing those is unidiomatic but does not silently change
// call sites.
var builtinFuncs = map[string]bool{
	"append": true, "cap": true, "clear": true, "close": true,
	"complex": true, "copy": true, "delete": true, "imag": true,
	"len": true, "make": true, "max": true, "min": true, "new": true,
	"panic": true, "print": true, "println": true, "real": true,
	"recover": true,
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := 0
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") {
				return nil
			}
			n, err := checkFile(path)
			if err != nil {
				return err
			}
			bad += n
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintshadow:", err)
			os.Exit(2)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintshadow: %d declaration(s) shadow builtin functions\n", bad)
		os.Exit(1)
	}
}

func checkFile(path string) (int, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return 0, err
	}
	bad := 0
	flag := func(id *ast.Ident) {
		if id != nil && builtinFuncs[id.Name] {
			fmt.Printf("%s: %q shadows the builtin function\n", fset.Position(id.Pos()), id.Name)
			bad++
		}
	}
	flagFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				flag(name)
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						flag(id)
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				flag(name)
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if id, ok := n.Key.(*ast.Ident); ok {
					flag(id)
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					flag(id)
				}
			}
		case *ast.FuncDecl:
			if n.Recv == nil {
				// Methods are exempt: sg.close() is a selector, not a
				// shadowed call site.
				flag(n.Name)
			}
			flagFields(n.Recv)
			flagFields(n.Type.Params)
			flagFields(n.Type.Results)
		case *ast.FuncLit:
			flagFields(n.Type.Params)
			flagFields(n.Type.Results)
		case *ast.TypeSpec:
			flag(n.Name)
		}
		return true
	})
	return bad, nil
}
