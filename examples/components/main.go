// Components: the Theorem 4.4 / 4.5 pipeline end to end —
// ConnectedComponents in KT-1 BCC(1), simulated by Alice and Bob across
// the reduction cut, with every wire bit metered, next to the
// information-theoretic floor the paper proves for it.
//
// Run with: go run ./examples/components
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bcclique/internal/algorithms"
	"bcclique/internal/core"
	"bcclique/internal/partition"
	"bcclique/internal/reduction"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 10
	rng := rand.New(rand.NewSource(4))
	pa, _ := partition.RandomPairing(n, rng)
	pb, _ := partition.RandomPairing(n, rng)
	join, err := pa.Join(pb)
	if err != nil {
		return err
	}
	fmt.Printf("TwoPartition instance on [%d]:\n", n)
	fmt.Printf("  Alice: %v\n  Bob:   %v\n  join:  %v\n\n", pa, pb, join)

	// Simulate the KT-1 ConnectedComponents algorithm through the
	// Alice/Bob cut (Theorem 4.4's protocol).
	algo, err := algorithms.NewNeighborhoodBroadcast(2)
	if err != nil {
		return err
	}
	sim, err := reduction.Simulate(algo, pa, pb)
	if err != nil {
		return err
	}
	fmt.Printf("simulated %q on the %d-vertex MultiCycle graph:\n", algo.Name(), 2*n)
	fmt.Printf("  rounds:            %d\n", sim.Rounds)
	fmt.Printf("  symbols/round/side: %d (the paper's {0,1,⊥}^{2n} messages)\n", sim.SymbolsPerRoundPerParty)
	fmt.Printf("  wire bits total:   %d\n", sim.WireBits)
	fmt.Printf("  matches direct run: %v\n", sim.MatchesDirect)
	fmt.Printf("  system verdict:     %v (join trivial: %v)\n\n", sim.Verdict, join.IsTrivial())

	// Bob reads the join off the component labels — PartitionComp solved.
	ly := layoutFor(n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = sim.Labels[ly.L(i)]
	}
	recovered := partition.FromLabels(labels)
	fmt.Printf("Bob recovers the join from component labels: %v (correct: %v)\n\n",
		recovered, recovered.Equal(join))

	// The floor: Theorem 4.5's information bound says any ε-error
	// protocol for this task moves Ω(n log n) bits.
	for _, eps := range []float64{0, 0.1} {
		cert, err := core.CertifyInfo(6, eps)
		if err != nil {
			return err
		}
		fmt.Printf("n=6, ε=%.2f: H(P_A)=%.2f bits, I(P_A;Π) ≥ %.2f (measured erasure channel: %.2f)\n",
			eps, cert.HPA, cert.Bound, cert.ErasureMI)
	}
	fmt.Println()
	fmt.Println("Dividing the Ω(n log n) floor by the O(n) bits the simulation moves")
	fmt.Println("per round yields the paper's Ω(log n) round bound for Monte Carlo")
	fmt.Println("ConnectedComponents in KT-1 BCC(1) (Theorem 4.5).")
	return nil
}

// layoutFor rebuilds the pairing layout used by Simulate.
func layoutFor(n int) reduction.Layout {
	// BuildPairing on any pairing pair returns the same layout shape.
	pa, _ := partition.FromBlocks(n, pairsOf(n))
	_, ly, err := reduction.BuildPairing(pa, pa)
	if err != nil {
		log.Fatal(err)
	}
	return ly
}

func pairsOf(n int) [][]int {
	var blocks [][]int
	for i := 0; i < n; i += 2 {
		blocks = append(blocks, []int{i, i + 1})
	}
	return blocks
}
