// Crossing: a walk-through of Figure 1 and Lemma 3.4 — the engine of the
// paper's KT-0 lower bound.
//
// We build a one-cycle KT-0 instance, cross two independent edges with
// the port-preserving rewiring of Definition 3.3, and demonstrate:
//
//  1. the crossed instance is a two-cycle (disconnected) input;
//  2. every vertex's initial view is bit-identical in both instances;
//  3. running an algorithm whose crossed endpoints broadcast matching
//     sequences leaves the two instances indistinguishable after t
//     rounds — so the algorithm must answer identically on a connected
//     and a disconnected instance.
//
// Run with: go run ./examples/crossing
package main

import (
	"fmt"
	"log"

	"bcclique/internal/algorithms"
	"bcclique/internal/bcc"
	"bcclique/internal/crossing"
	"bcclique/internal/graph"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 10
	seq := make([]int, n)
	for i := range seq {
		seq[i] = i
	}
	g, err := graph.FromCycle(n, seq)
	if err != nil {
		return err
	}
	in, err := bcc.NewKT0(bcc.SequentialIDs(n), g, bcc.RotationWiring(n))
	if err != nil {
		return err
	}

	e1 := crossing.DirectedEdge{V: 0, U: 1}
	e2 := crossing.DirectedEdge{V: 5, U: 6}
	fmt.Printf("base instance: the cycle 0-1-…-%d (connected)\n", n-1)
	fmt.Printf("crossing %v with %v (independent: %v)\n",
		e1, e2, crossing.Independent(g, e1, e2))

	crossed, err := crossing.Cross(in, e1, e2)
	if err != nil {
		return err
	}
	lengths, _ := crossed.Input().CycleLengths()
	fmt.Printf("crossed instance: two cycles of lengths %v (disconnected)\n\n", lengths)

	// Views are preserved: no vertex can tell the difference at round 0.
	same := 0
	for v := 0; v < n; v++ {
		if in.View(v).Equal(crossed.View(v)) {
			same++
		}
	}
	fmt.Printf("identical initial views: %d/%d vertices\n", same, n)

	// Run an input-parity probe for 5 rounds on both and compare
	// everything each vertex ever saw.
	algo := algorithms.InputParity{T: 5}
	coin := bcc.NewCoin(42)
	indist, err := crossing.VerifyIndistinguishable(in, crossed, algo, 5, coin)
	if err != nil {
		return err
	}
	fmt.Printf("indistinguishable after 5 rounds of %q: %v\n", algo.Name(), indist)

	// And the Lemma 3.4 statement end to end.
	hyp, concl, err := crossing.Lemma34Holds(in, e1, e2, algo, 5, coin)
	if err != nil {
		return err
	}
	fmt.Printf("Lemma 3.4: hypothesis (matching broadcast sequences) = %v, conclusion = %v\n", hyp, concl)

	// Crossing back restores the original instance (the involution that
	// Section 3.1's indistinguishability graph is built on).
	f1, f2 := crossing.CrossedPair(e1, e2)
	back, err := crossing.Cross(crossed, f1, f2)
	if err != nil {
		return err
	}
	fmt.Printf("crossing back restores the instance: %v\n", back.Equal(in))
	return nil
}
