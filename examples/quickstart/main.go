// Quickstart: build a BCC(1) instance, run an algorithm, inspect the
// result.
//
// The paper's model (Section 1.2): n vertices on a clique network, each
// broadcasting at most one bit per round. Here we put a Hamiltonian-cycle
// input graph on a KT-1 instance, solve Connectivity with the
// O(log n)-round neighbourhood-broadcast algorithm, and compare against a
// two-cycle (disconnected) instance.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bcclique/internal/algorithms"
	"bcclique/internal/bcc"
	"bcclique/internal/graph"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 32

	// A connected input: the cycle 0-1-...-31.
	seq := make([]int, n)
	for i := range seq {
		seq[i] = i
	}
	oneCycle, err := graph.FromCycle(n, seq)
	if err != nil {
		return err
	}

	// A disconnected input: two 16-cycles.
	twoCycle, err := graph.FromCycles(n, seq[:16], seq[16:])
	if err != nil {
		return err
	}

	// The algorithm: every vertex announces its ≤ 2 neighbours bit by
	// bit; 2⌈log₂ n⌉ = 10 rounds of 1 bit each.
	algo, err := algorithms.NewNeighborhoodBroadcast(2)
	if err != nil {
		return err
	}

	for _, tc := range []struct {
		name  string
		input *graph.Graph
	}{
		{name: "one cycle (connected)", input: oneCycle},
		{name: "two cycles (disconnected)", input: twoCycle},
	} {
		in, err := bcc.NewKT1(bcc.SequentialIDs(n), tc.input)
		if err != nil {
			return err
		}
		res, err := bcc.Run(in, algo)
		if err != nil {
			return err
		}
		fmt.Printf("%-26s → verdict %v after %d rounds (%d bits broadcast)\n",
			tc.name, res.Verdict, res.Rounds, res.TotalBits)

		// The same nodes also label components (ConnectedComponents).
		distinct := make(map[int]bool)
		for _, l := range res.Labels {
			distinct[l] = true
		}
		fmt.Printf("%-26s → %d component label(s)\n", "", len(distinct))
	}

	fmt.Println()
	fmt.Println("The paper proves no KT-1 BCC(1) algorithm can beat Ω(log n) rounds")
	fmt.Printf("for this problem; this algorithm uses %d rounds at n=%d — tight.\n",
		algo.Rounds(n), n)
	return nil
}
