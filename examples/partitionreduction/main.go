// Partitionreduction: a walk-through of Figure 2 and Theorem 4.3 — the
// reduction from the 2-party Partition problem to Connectivity that
// powers the paper's KT-1 lower bounds.
//
// We rebuild both worked examples from the paper (shifted to a 0-based
// ground set), verify that the connected components of G(P_A, P_B)
// realize the join P_A ∨ P_B, and show the rank facts that make the
// reduction bite.
//
// Run with: go run ./examples/partitionreduction
package main

import (
	"fmt"
	"log"

	"bcclique/internal/comm"
	"bcclique/internal/partition"
	"bcclique/internal/reduction"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Figure 2, left: general partitions on [8].
	pa, err := partition.FromBlocks(8, [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7}})
	if err != nil {
		return err
	}
	pb, err := partition.FromBlocks(8, [][]int{{0, 1, 5}, {2, 3, 6}, {4, 7}})
	if err != nil {
		return err
	}
	join, err := pa.Join(pb)
	if err != nil {
		return err
	}
	fmt.Println("— Figure 2, left (general construction) —")
	fmt.Printf("P_A       = %v\n", pa)
	fmt.Printf("P_B       = %v\n", pb)
	fmt.Printf("P_A ∨ P_B = %v (trivial: %v)\n", join, join.IsTrivial())

	g, ly, err := reduction.BuildGeneral(pa, pb)
	if err != nil {
		return err
	}
	fmt.Printf("G(P_A,P_B): %d vertices (A,L,R,B of %d each), %d edges, connected: %v\n",
		g.N(), ly.N(), g.M(), g.IsConnected())
	induced := reduction.InducedPartition(g, ly, ly.L)
	fmt.Printf("components restricted to L: %v\n", induced)
	fmt.Printf("Theorem 4.3 (components ≡ join): %v\n\n", induced.Equal(join))

	// Figure 2, right: perfect pairings → a 2-regular MultiCycle input.
	qa, err := partition.FromBlocks(8, [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}})
	if err != nil {
		return err
	}
	qb, err := partition.FromBlocks(8, [][]int{{0, 2}, {1, 3}, {4, 6}, {5, 7}})
	if err != nil {
		return err
	}
	qJoin, err := qa.Join(qb)
	if err != nil {
		return err
	}
	fmt.Println("— Figure 2, right (pairing construction) —")
	fmt.Printf("P_A       = %v\n", qa)
	fmt.Printf("P_B       = %v\n", qb)
	fmt.Printf("P_A ∨ P_B = %v (trivial: %v)\n", qJoin, qJoin.IsTrivial())

	g2, ly2, err := reduction.BuildPairing(qa, qb)
	if err != nil {
		return err
	}
	lengths, _ := g2.CycleLengths()
	fmt.Printf("G(P_A,P_B): %d vertices (L,R), 2-regular: %v, cycles %v, connected: %v\n",
		g2.N(), g2.IsTwoRegular(), lengths, g2.IsConnected())
	if err := reduction.VerifyTheorem43(g2, ly2, qa, qb); err != nil {
		return err
	}
	fmt.Println("Theorem 4.3 verified on the pairing construction.")

	// Why the reduction bites: the join matrices have full rank, so a
	// deterministic protocol needs Ω(n log n) bits (Corollaries 2.4/4.2).
	fmt.Println()
	fmt.Println("— Rank lower bounds —")
	for n := 2; n <= 6; n += 2 {
		m, err := comm.MatrixM(n)
		if err != nil {
			return err
		}
		e, err := comm.MatrixE(n)
		if err != nil {
			return err
		}
		fmt.Printf("n=%d: rank(M)=%d/B_n=%v   rank(E)=%d/(n−1)!!=%v\n",
			n, m.Rank(), partition.Bell(n), e.Rank(), partition.NumPairings(n))
	}
	fmt.Println()
	fmt.Println("Full rank ⇒ D(Partition) ≥ log₂ B_n = Ω(n log n) bits, and any")
	fmt.Println("r-round KT-1 BCC(1) algorithm yields an O(rn)-bit protocol ⇒ r = Ω(log n).")
	return nil
}
