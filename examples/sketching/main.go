// Sketching: the tightness side of the paper beyond bounded degree —
// deterministic k-sparse recovery and peeling connectivity for
// bounded-arboricity inputs (Section 1.1's [MT16] citation), plus the
// Section 1.3 proof-labeling-scheme connection.
//
// Run with: go run ./examples/sketching
package main

import (
	"fmt"
	"log"

	"bcclique/internal/algorithms"
	"bcclique/internal/bcc"
	"bcclique/internal/graph"
	"bcclique/internal/pls"
	"bcclique/internal/sketch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Deterministic sparse recovery: 2k+1 power sums identify any
	//    ≤ k-subset of a known universe exactly.
	rec, err := sketch.NewRecoverer(4)
	if err != nil {
		return err
	}
	universe := []int{3, 17, 42, 99, 256, 1001, 4095}
	set := []int{17, 256, 4095}
	sums, err := rec.Encode(set)
	if err != nil {
		return err
	}
	decoded, ok := rec.Decode(sums, universe)
	fmt.Printf("sketch of %v → %d field elements → decoded %v (ok=%v)\n\n",
		set, rec.Len(), decoded, ok)

	// 2. A star: max degree n−1 but arboricity 1. Degree-bounded
	//    algorithms cannot provision for the centre; peeling retires the
	//    leaves first, and the centre's live degree collapses.
	const n = 24
	star := graph.New(n)
	for i := 1; i < n; i++ {
		star.MustAddEdge(0, i)
	}
	in, err := bcc.NewKT1(bcc.SequentialIDs(n), star)
	if err != nil {
		return err
	}
	algo, err := sketch.NewConnectivity(1)
	if err != nil {
		return err
	}
	res, err := bcc.Run(in, algo)
	if err != nil {
		return err
	}
	fmt.Printf("star on %d vertices (centre degree %d, arboricity 1):\n", n, n-1)
	fmt.Printf("  %s: verdict %v in %d rounds of BCC(%d)\n\n",
		algo.Name(), res.Verdict, res.Rounds, algo.Bandwidth())

	// 3. The promise is checked, not assumed: a clique under an
	//    arboricity-1 promise fails detectably.
	clique := graph.New(8)
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			clique.MustAddEdge(u, v)
		}
	}
	inK, err := bcc.NewKT1(bcc.SequentialIDs(8), clique)
	if err != nil {
		return err
	}
	resK, err := bcc.Run(inK, algo)
	if err != nil {
		return err
	}
	fmt.Printf("K8 under an arboricity-1 promise: verdict %v, labels all −1: %v\n\n",
		resK.Verdict, allMinusOne(resK.Labels))

	// 4. Section 1.3: any fast BCC(1) algorithm is a short broadcast
	//    proof-labeling scheme — transcripts as labels.
	seq := make([]int, 16)
	for i := range seq {
		seq[i] = i
	}
	cyc, err := graph.FromCycle(16, seq)
	if err != nil {
		return err
	}
	inC, err := bcc.NewKT1(bcc.SequentialIDs(16), cyc)
	if err != nil {
		return err
	}
	nb, err := algorithms.NewNeighborhoodBroadcast(2)
	if err != nil {
		return err
	}
	scheme := pls.Transcript{Algo: nb}
	labels, err := scheme.Prove(inC)
	if err != nil {
		return err
	}
	accepted, err := pls.Accept(inC, scheme, labels)
	if err != nil {
		return err
	}
	fmt.Printf("transcript proof-labeling scheme from %q:\n", nb.Name())
	fmt.Printf("  label size %d bits (= 2 bits × %d rounds), accepted: %v\n",
		pls.MaxLabelBits(labels), nb.Rounds(16), accepted)
	fmt.Println()
	fmt.Println("So an o(log n)-round deterministic BCC(1) Connectivity algorithm")
	fmt.Println("would give an o(log n)-bit scheme — contradicting the Ω(log n)")
	fmt.Println("verification bound of [PP17] that Section 1.3 builds on.")
	return nil
}

func allMinusOne(labels []int) bool {
	for _, l := range labels {
		if l != -1 {
			return false
		}
	}
	return len(labels) > 0
}
