package bcclique_test

import (
	"context"
	"io"
	"testing"

	"bcclique/internal/engine"
	"bcclique/internal/serving"
)

// Serving benchmarks (BENCH_serving.json baseline): the per-request
// overhead of the serving armor — admission, rate limiting, metrics
// recording, the /metrics scrape, and the job-table round trip. These
// sit on every bccd request, so their cost (and especially their
// allocation count, which CI gates) must stay flat as the server grows.

// BenchmarkServingQueueAcquireRelease measures one admission
// acquire/release pair — the bounded-queue cost every heavy request
// pays.
func BenchmarkServingQueueAcquireRelease(b *testing.B) {
	q := serving.NewQueue(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		release, err := q.Acquire()
		if err != nil {
			b.Fatal(err)
		}
		release()
	}
}

// BenchmarkServingLimiterAllow measures one token-bucket check for an
// established client.
func BenchmarkServingLimiterAllow(b *testing.B) {
	l := serving.NewLimiter(1e9, 1<<30) // never refuses: measure the bookkeeping
	l.Allow("client")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !l.Allow("client") {
			b.Fatal("limiter refused under an effectively infinite rate")
		}
	}
}

// BenchmarkServingMetricsRecord measures the per-request metrics write:
// one labeled counter increment plus one latency observation.
func BenchmarkServingMetricsRecord(b *testing.B) {
	r := serving.NewRegistry()
	requests := r.CounterVec("requests_total", "requests", "endpoint", "code")
	latency := r.HistogramVec("latency_seconds", "latency", serving.DefaultLatencyBuckets, "endpoint")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		requests.With("/v1/report", "200").Inc()
		latency.Observe(0.004, "/v1/report")
	}
}

// BenchmarkServingMetricsScrape measures one /metrics render over a
// registry shaped like bccd's: a labeled request counter, a latency
// histogram, and a handful of gauges.
func BenchmarkServingMetricsScrape(b *testing.B) {
	r := serving.NewRegistry()
	requests := r.CounterVec("requests_total", "requests", "endpoint", "code")
	latency := r.HistogramVec("latency_seconds", "latency", serving.DefaultLatencyBuckets, "endpoint")
	for _, ep := range []string{"/v1/jobs", "/v1/report", "/v1/sweeps", "/healthz", "/metrics"} {
		requests.With(ep, "200").Add(100)
		latency.Observe(0.004, ep)
	}
	requests.With("/v1/jobs", "429").Add(3)
	for _, g := range []string{"queue_depth", "queue_capacity", "jobs_inflight", "ready", "cache_hit_rate"} {
		r.GaugeFunc(g, g, func() float64 { return 1 })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServingJobRoundtrip measures the job-table overhead of one
// submitted job from Submit to its terminal snapshot — the async path's
// serving cost with a free spec, so the engine's own work is excluded.
func BenchmarkServingJobRoundtrip(b *testing.B) {
	spec := engine.Spec{ID: "J01", Title: "noop", PaperRef: "-",
		Run: func(context.Context, engine.Config, engine.Params) (*engine.Result, error) {
			return &engine.Result{Claim: "c", Finding: "f"}, nil
		}}
	eng := engine.New([]engine.Spec{spec})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := eng.Submit(ctx, engine.Config{Seed: int64(i)}, []string{"J01"})
		if _, err := eng.WaitJob(ctx, job.ID); err != nil {
			b.Fatal(err)
		}
	}
}
