package bcclique_test

import (
	"testing"

	"bcclique/internal/bcc"
	"bcclique/internal/graph"
	"bcclique/internal/parallel"
)

// shardLoopProbe is an inert run-bound BCC(2) algorithm with
// preallocated nodes: binding it opts a run into the intra-cell
// replica-parallel loop, and its nodes consume the raw broadcast vector,
// so a Run's allocations are exactly the sharded generic round loop's
// own. Bandwidth 2 keeps it off the bit plane.
type shardLoopProbe struct {
	rounds int
	nodes  []bcc.Node
	next   int
}

func (p *shardLoopProbe) Name() string   { return "shard-loop-probe" }
func (p *shardLoopProbe) Bandwidth() int { return 2 }
func (p *shardLoopProbe) Rounds(int) int { return p.rounds }
func (p *shardLoopProbe) BindRun(*bcc.Instance, int) bcc.Algorithm {
	p.next = 0
	return p
}
func (p *shardLoopProbe) NewNode(bcc.View, *bcc.Coin) bcc.Node {
	n := p.nodes[p.next]
	p.next = (p.next + 1) % len(p.nodes)
	return n
}

type shardLoopNode struct{}

func (shardLoopNode) Send(int) bcc.Message            { return bcc.Word(2, 2) }
func (shardLoopNode) Receive(int, []bcc.Message)      {}
func (shardLoopNode) ReceiveSends(int, []bcc.Message) {}

// TestShardedRoundLoopAllocationFree pins the intra-cell parallel
// loop's 0-allocs steady-state contract, the sharded sibling of
// TestBitPlaneRoundLoopAllocationFree: with node construction amortized
// and worker sharding forced on, a run's allocation count is a small
// constant independent of the round count — the per-run shard group,
// phase closures, and parked workers are the only overhead, and no
// allocation happens per round or per phase.
func TestShardedRoundLoopAllocationFree(t *testing.T) {
	const n = 640 // 3 shards of 256: cursor contention plus a ragged tail
	g := graph.New(n)
	in, err := bcc.NewKT1(bcc.SequentialIDs(n), g)
	if err != nil {
		t.Fatal(err)
	}
	prev := bcc.SetIntraCellMinN(1)
	defer bcc.SetIntraCellMinN(prev)
	parallel.SetLimit(3)
	defer parallel.SetLimit(0)
	allocsAt := func(rounds int) float64 {
		probe := &shardLoopProbe{rounds: rounds, nodes: make([]bcc.Node, n)}
		for i := range probe.nodes {
			probe.nodes[i] = shardLoopNode{}
		}
		// Warm the arena pools before measuring.
		res, err := bcc.Run(in, probe, bcc.WithoutTranscripts())
		if err != nil {
			t.Fatal(err)
		}
		bcc.Recycle(res)
		return testing.AllocsPerRun(10, func() {
			res, err := bcc.Run(in, probe, bcc.WithoutTranscripts())
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalBits != 2*n*rounds {
				t.Fatalf("probe run broadcast %d bits, want %d", res.TotalBits, 2*n*rounds)
			}
			bcc.Recycle(res)
		})
	}
	short, long := allocsAt(64), allocsAt(4096)
	if long > short {
		t.Errorf("allocations grow with the round count (%.1f at 64 rounds, %.1f at 4096): the sharded round loop allocates", short, long)
	}
	// The constant is the per-run overhead: shard group + parked
	// workers + phase closures + node/SendsReceiver tables. A per-round
	// or per-phase regression would add thousands.
	if long > 48 {
		t.Errorf("per-run allocation constant is %.1f, want a small constant", long)
	}
}
