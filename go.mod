module bcclique

go 1.24
